//! Span-based operation observability on the virtual clock.
//!
//! The paper's evaluation is written entirely in observable units —
//! messages per operation (§2.3.3), the Figure 1/2 timelines, and the
//! failure-action tables (§5.6). Flat counters ([`crate::NetStats`]) and
//! the unstructured message log ([`crate::Trace`]) regenerate the counts
//! and the figures, but neither can answer *structural* questions: which
//! RPC attempts belonged to which system call, whether a reply matched a
//! request that was actually outstanding, or whether a shadow-page commit
//! overlapped a read of the version being committed.
//!
//! This module adds that structure:
//!
//! * **Spans.** Each syscall-level operation (open, read, commit, fork,
//!   partition-poll, …) opens a span; every RPC the [`crate::RpcEngine`]
//!   issues on its behalf opens a nested child span. Spans carry the
//!   originating service, the operation label, the site, and an outcome.
//! * **Histograms.** Closing a span feeds its virtual-time duration into
//!   a per-(service, op) log₂ latency [`Histogram`], so p50/p95/max over
//!   [`Ticks`] sit right next to the message counters.
//! * **JSONL export.** [`export_jsonl`] writes the event stream one flat
//!   JSON object per line (hand-rolled, like the bench report writer —
//!   no dependencies); [`parse_jsonl`] reads it back losslessly.
//! * **The trace auditor.** [`audit`] replays an event stream offline and
//!   checks the protocol invariants the engine is supposed to maintain:
//!   every reply matches an outstanding request; an RPC is re-issued
//!   after reply loss only if the message is idempotent; consecutive
//!   circuit reopens per send stay within
//!   [`MAX_CONSECUTIVE_REOPENS`](crate::MAX_CONSECUTIVE_REOPENS); a
//!   shadow-page commit never interleaves with a read of the committing
//!   version; every one-way send is either delivered or accounted as
//!   exactly one loss.

use std::collections::BTreeMap;

use locus_types::{SiteId, Ticks};

use crate::NetError;

/// Retained observability events are capped so a forgotten enabled
/// observer cannot grow without bound; the overflow is counted in
/// [`Observer::truncated`] rather than silently discarded.
pub const OBS_CAP: usize = 1 << 20;

/// Number of log₂ buckets in a latency [`Histogram`] (covers durations
/// up to 2³⁹ µs ≈ 6 days of virtual time, far beyond any schedule).
pub const HIST_BUCKETS: usize = 40;

/// How one wire transmission attempt ended, as seen by the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message reached its destination.
    Delivered,
    /// An injected fault dropped the message; the destination never saw
    /// it ([`NetError::Dropped`]).
    Dropped,
    /// The destination was crashed or partitioned away
    /// ([`NetError::Unreachable`]).
    Unreachable,
    /// The virtual circuit was closed before the message reached the
    /// wire ([`NetError::CircuitClosed`]).
    CircuitClosed,
    /// A reply was dropped after the request had been served; the
    /// circuit closed mid-conversation ([`NetError::ReplyLost`], §5.1).
    ReplyLost,
    /// A site addressed a network message to itself
    /// ([`NetError::SelfSend`]); the engine's same-site shortcut makes
    /// this unreachable in practice, but the encoding is total.
    SelfSend,
}

impl SendOutcome {
    /// Classifies a raw send result.
    pub fn of(result: &Result<(), NetError>) -> SendOutcome {
        match result {
            Ok(()) => SendOutcome::Delivered,
            Err(NetError::Dropped) => SendOutcome::Dropped,
            Err(NetError::Unreachable) => SendOutcome::Unreachable,
            Err(NetError::CircuitClosed) => SendOutcome::CircuitClosed,
            Err(NetError::ReplyLost) => SendOutcome::ReplyLost,
            Err(NetError::SelfSend) => SendOutcome::SelfSend,
        }
    }

    /// Short stable label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            SendOutcome::Delivered => "ok",
            SendOutcome::Dropped => "drop",
            SendOutcome::Unreachable => "unreachable",
            SendOutcome::CircuitClosed => "circuit",
            SendOutcome::ReplyLost => "reply-lost",
            SendOutcome::SelfSend => "self",
        }
    }

    /// Inverse of [`SendOutcome::as_str`].
    pub fn parse(s: &str) -> Option<SendOutcome> {
        Some(match s {
            "ok" => SendOutcome::Delivered,
            "drop" => SendOutcome::Dropped,
            "unreachable" => SendOutcome::Unreachable,
            "circuit" => SendOutcome::CircuitClosed,
            "reply-lost" => SendOutcome::ReplyLost,
            "self" => SendOutcome::SelfSend,
            _ => return None,
        })
    }
}

/// One structured observability event. Span ids are per-[`Observer`]
/// and start at 1; id 0 means "no enclosing span".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A syscall-level operation (or a nested engine RPC) began.
    SpanOpen {
        /// Span id (unique within the observer, first id is 1).
        id: u64,
        /// Enclosing span id, 0 at top level.
        parent: u64,
        /// Originating service (`"fs"`, `"proc"`, `"topology"`, …).
        service: String,
        /// Operation label (`"open"`, `"commit"`, `"FORK req"`, …).
        op: String,
        /// The site the operation runs on behalf of.
        site: SiteId,
        /// Virtual time the span opened.
        at: Ticks,
    },
    /// A span ended.
    SpanClose {
        /// The span being closed.
        id: u64,
        /// Outcome label (`"ok"`, `"unreachable"`, `"reply-lost"`, …).
        outcome: String,
        /// Virtual time the span closed.
        at: Ticks,
    },
    /// One request transmission attempt by the RPC engine.
    Request {
        /// Enclosing span.
        span: u64,
        /// Virtual time of the attempt.
        at: Ticks,
        /// Requesting site.
        from: SiteId,
        /// Serving site.
        to: SiteId,
        /// Request kind label.
        kind: String,
        /// The kind label of the reply paired with this request.
        reply_kind: String,
        /// Request wire size in bytes.
        bytes: u64,
        /// Whether the request may be re-issued after reply loss.
        idempotent: bool,
        /// How the attempt ended.
        outcome: SendOutcome,
    },
    /// One reply transmission attempt by the RPC engine.
    Reply {
        /// Enclosing span.
        span: u64,
        /// Virtual time of the attempt.
        at: Ticks,
        /// Serving site (the reply's sender).
        from: SiteId,
        /// Requesting site (the reply's destination).
        to: SiteId,
        /// Reply kind label.
        kind: String,
        /// Reply wire size in bytes.
        bytes: u64,
        /// How the attempt ended.
        outcome: SendOutcome,
    },
    /// One one-way transmission attempt (write protocol, notifications).
    OneWay {
        /// Enclosing span.
        span: u64,
        /// Virtual time of the attempt.
        at: Ticks,
        /// Sending site.
        from: SiteId,
        /// Destination site.
        to: SiteId,
        /// Message kind label.
        kind: String,
        /// Wire size in bytes.
        bytes: u64,
        /// How the attempt ended.
        outcome: SendOutcome,
    },
    /// A one-way send was abandoned after retry exhaustion and counted
    /// as a loss for partition recovery to reconcile.
    OneWayLoss {
        /// Enclosing span.
        span: u64,
        /// Virtual time the loss was recorded.
        at: Ticks,
        /// Message kind label.
        kind: String,
    },
    /// A protocol annotation from a subsystem (e.g. `commit.begin` /
    /// `commit.end` bracketing the shadow-page install, or `read.page`
    /// tagging the version a read served).
    Note {
        /// Enclosing span (0 if none was active).
        span: u64,
        /// Virtual time of the annotation.
        at: Ticks,
        /// The site emitting the annotation.
        site: SiteId,
        /// Annotation key (`"commit.begin"`, `"read.page"`, …).
        key: String,
        /// The object the annotation refers to (e.g. a gfid).
        label: String,
        /// A numeric payload (e.g. a version-vector total).
        value: u64,
    },
}

impl ObsEvent {
    /// The virtual time of the event.
    pub fn at(&self) -> Ticks {
        match self {
            ObsEvent::SpanOpen { at, .. }
            | ObsEvent::SpanClose { at, .. }
            | ObsEvent::Request { at, .. }
            | ObsEvent::Reply { at, .. }
            | ObsEvent::OneWay { at, .. }
            | ObsEvent::OneWayLoss { at, .. }
            | ObsEvent::Note { at, .. } => *at,
        }
    }
}

/// A log₂-bucketed latency histogram over virtual time.
///
/// Bucket 0 holds zero-duration samples; bucket *i* ≥ 1 holds durations
/// in `[2^(i-1), 2^i - 1]` µs. Quantiles are reported as the upper edge
/// of the bucket the quantile falls in — deliberately coarse, exactly
/// reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    max: Ticks,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            max: Ticks::ZERO,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Ticks) {
        let us = d.as_micros();
        let idx = if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(d);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram in bucket-wise. Recording the same samples
    /// split across two histograms and merging gives the histogram of the
    /// union, so the epoch barrier can combine per-shard latency data
    /// without replaying the samples.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// The exact maximum recorded duration.
    pub fn max(&self) -> Ticks {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// it falls in; [`Ticks::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Ticks {
        if self.count == 0 {
            return Ticks::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return if i == 0 {
                    Ticks::ZERO
                } else {
                    Ticks::micros((1u64 << i) - 1)
                };
            }
        }
        self.max
    }
}

/// An open span the observer is still tracking.
#[derive(Clone, Debug)]
struct OpenSpan {
    service: String,
    op: String,
    opened: Ticks,
}

/// The span recorder living inside [`crate::Net`]; disabled by default.
///
/// All methods are no-ops while disabled, and [`Observer::span_open`]
/// returns the sentinel id 0 that every other method ignores — callers
/// never need to branch on whether observation is on.
#[derive(Debug, Default)]
pub struct Observer {
    enabled: bool,
    next_span: u64,
    stack: Vec<u64>,
    open: BTreeMap<u64, OpenSpan>,
    events: Vec<ObsEvent>,
    truncated: u64,
    hists: BTreeMap<(String, String), Histogram>,
}

impl Observer {
    /// A disabled, empty observer.
    pub fn new() -> Self {
        Observer::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn push_event(&mut self, ev: ObsEvent) {
        if self.events.len() < OBS_CAP {
            self.events.push(ev);
        } else {
            self.truncated += 1;
        }
    }

    /// Opens a span and returns its id (0 while disabled).
    pub fn span_open(&mut self, now: Ticks, service: &str, op: &str, site: SiteId) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.next_span += 1;
        let id = self.next_span;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.stack.push(id);
        self.open.insert(
            id,
            OpenSpan {
                service: service.to_owned(),
                op: op.to_owned(),
                opened: now,
            },
        );
        self.push_event(ObsEvent::SpanOpen {
            id,
            parent,
            service: service.to_owned(),
            op: op.to_owned(),
            site,
            at: now,
        });
        id
    }

    /// Closes a span, feeding its duration into the per-(service, op)
    /// histogram. Id 0 and unknown ids are ignored.
    pub fn span_close(&mut self, now: Ticks, id: u64, outcome: &str) {
        if id == 0 {
            return;
        }
        let Some(span) = self.open.remove(&id) else {
            return;
        };
        if let Some(pos) = self.stack.iter().rposition(|&s| s == id) {
            self.stack.remove(pos);
        }
        self.hists
            .entry((span.service, span.op))
            .or_default()
            .record(now - span.opened);
        self.push_event(ObsEvent::SpanClose {
            id,
            outcome: outcome.to_owned(),
            at: now,
        });
    }

    /// Records one request transmission attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &mut self,
        now: Ticks,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        reply_kind: &str,
        bytes: u64,
        idempotent: bool,
        outcome: SendOutcome,
    ) {
        if !self.enabled {
            return;
        }
        self.push_event(ObsEvent::Request {
            span,
            at: now,
            from,
            to,
            kind: kind.to_owned(),
            reply_kind: reply_kind.to_owned(),
            bytes,
            idempotent,
            outcome,
        });
    }

    /// Records one reply transmission attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn reply(
        &mut self,
        now: Ticks,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        bytes: u64,
        outcome: SendOutcome,
    ) {
        if !self.enabled {
            return;
        }
        self.push_event(ObsEvent::Reply {
            span,
            at: now,
            from,
            to,
            kind: kind.to_owned(),
            bytes,
            outcome,
        });
    }

    /// Records one one-way transmission attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn one_way(
        &mut self,
        now: Ticks,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        bytes: u64,
        outcome: SendOutcome,
    ) {
        if !self.enabled {
            return;
        }
        self.push_event(ObsEvent::OneWay {
            span,
            at: now,
            from,
            to,
            kind: kind.to_owned(),
            bytes,
            outcome,
        });
    }

    /// Records an abandoned one-way send.
    pub fn one_way_loss(&mut self, now: Ticks, span: u64, kind: &str) {
        if !self.enabled {
            return;
        }
        self.push_event(ObsEvent::OneWayLoss {
            span,
            at: now,
            kind: kind.to_owned(),
        });
    }

    /// Records a protocol annotation, attached to the innermost open
    /// span (0 if none).
    pub fn note(&mut self, now: Ticks, site: SiteId, key: &str, label: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let span = self.stack.last().copied().unwrap_or(0);
        self.push_event(ObsEvent::Note {
            span,
            at: now,
            site,
            key: key.to_owned(),
            label: label.to_owned(),
            value,
        });
    }

    /// Drains the recorded events (resetting the truncation counter);
    /// histograms persist.
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        self.truncated = 0;
        std::mem::take(&mut self.events)
    }

    /// How many events were discarded past [`OBS_CAP`] since the last
    /// [`Observer::take_events`].
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Snapshot of the per-(service, op) latency histograms.
    pub fn histograms(&self) -> BTreeMap<(String, String), Histogram> {
        self.hists.clone()
    }

    /// Number of buffered events. The epoch merge slices per-operation
    /// segments out of shard buffers by index, so op marks snapshot this.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Forks a fresh observer for a parallel-epoch shard: same enabled
    /// flag, empty buffers, span ids allocated locally (they are
    /// renumbered into the parent's id space at absorb time). Panics if
    /// any span is open — an epoch may only fork at a quiescent point.
    pub fn fork_shard(&self) -> Observer {
        assert!(
            self.stack.is_empty() && self.open.is_empty(),
            "epoch fork with observation spans still open"
        );
        Observer {
            enabled: self.enabled,
            ..Observer::default()
        }
    }

    /// Dismantles a shard observer at the epoch barrier into
    /// (events, truncation count, histograms). Panics if the shard left
    /// a span open — every operation must complete within its epoch.
    pub fn into_shard_parts(self) -> (Vec<ObsEvent>, u64, BTreeMap<(String, String), Histogram>) {
        assert!(
            self.stack.is_empty() && self.open.is_empty(),
            "epoch barrier reached with observation spans still open in a shard"
        );
        (self.events, self.truncated, self.hists)
    }

    /// Absorbs one per-operation segment of a shard's event buffer:
    /// every timestamp is shifted by `shift` onto the merged clock, and
    /// span ids are renumbered into this observer's id space through
    /// `remap` (one map per shard, shared across that shard's segments,
    /// populated in first-appearance order). Events re-enter through the
    /// capped push path, so [`OBS_CAP`] truncation counts exactly as a
    /// sequential run's would.
    pub fn absorb_segment(
        &mut self,
        events: &[ObsEvent],
        shift: Ticks,
        remap: &mut BTreeMap<u64, u64>,
    ) {
        let map = |remap: &BTreeMap<u64, u64>, id: u64| -> u64 {
            if id == 0 {
                0
            } else {
                *remap
                    .get(&id)
                    .expect("shard event references a span the shard never opened")
            }
        };
        for ev in events {
            let ev = match ev {
                ObsEvent::SpanOpen {
                    id,
                    parent,
                    service,
                    op,
                    site,
                    at,
                } => {
                    self.next_span += 1;
                    let new_id = self.next_span;
                    let new_parent = map(remap, *parent);
                    remap.insert(*id, new_id);
                    ObsEvent::SpanOpen {
                        id: new_id,
                        parent: new_parent,
                        service: service.clone(),
                        op: op.clone(),
                        site: *site,
                        at: *at + shift,
                    }
                }
                ObsEvent::SpanClose { id, outcome, at } => ObsEvent::SpanClose {
                    id: map(remap, *id),
                    outcome: outcome.clone(),
                    at: *at + shift,
                },
                ObsEvent::Request {
                    span,
                    at,
                    from,
                    to,
                    kind,
                    reply_kind,
                    bytes,
                    idempotent,
                    outcome,
                } => ObsEvent::Request {
                    span: map(remap, *span),
                    at: *at + shift,
                    from: *from,
                    to: *to,
                    kind: kind.clone(),
                    reply_kind: reply_kind.clone(),
                    bytes: *bytes,
                    idempotent: *idempotent,
                    outcome: *outcome,
                },
                ObsEvent::Reply {
                    span,
                    at,
                    from,
                    to,
                    kind,
                    bytes,
                    outcome,
                } => ObsEvent::Reply {
                    span: map(remap, *span),
                    at: *at + shift,
                    from: *from,
                    to: *to,
                    kind: kind.clone(),
                    bytes: *bytes,
                    outcome: *outcome,
                },
                ObsEvent::OneWay {
                    span,
                    at,
                    from,
                    to,
                    kind,
                    bytes,
                    outcome,
                } => ObsEvent::OneWay {
                    span: map(remap, *span),
                    at: *at + shift,
                    from: *from,
                    to: *to,
                    kind: kind.clone(),
                    bytes: *bytes,
                    outcome: *outcome,
                },
                ObsEvent::OneWayLoss { span, at, kind } => ObsEvent::OneWayLoss {
                    span: map(remap, *span),
                    at: *at + shift,
                    kind: kind.clone(),
                },
                ObsEvent::Note {
                    span,
                    at,
                    site,
                    key,
                    label,
                    value,
                } => ObsEvent::Note {
                    span: map(remap, *span),
                    at: *at + shift,
                    site: *site,
                    key: key.clone(),
                    label: label.clone(),
                    value: *value,
                },
            };
            self.push_event(ev);
        }
    }

    /// Folds a shard's per-(service, op) histograms into this observer's.
    pub fn merge_hists(&mut self, other: BTreeMap<(String, String), Histogram>) {
        for (key, h) in other {
            self.hists.entry(key).or_default().merge_from(&h);
        }
    }

    /// Per-(service, op) latency summary rows, sorted by service then op.
    pub fn op_stats(&self) -> Vec<OpStat> {
        self.hists
            .iter()
            .map(|((service, op), h)| OpStat {
                service: service.clone(),
                op: op.clone(),
                count: h.count(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                max: h.max(),
            })
            .collect()
    }
}

/// One row of the per-operation latency table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStat {
    /// Originating service.
    pub service: String,
    /// Operation label.
    pub op: String,
    /// Completed spans.
    pub count: u64,
    /// Median virtual-time latency (bucket upper edge).
    pub p50: Ticks,
    /// 95th-percentile virtual-time latency (bucket upper edge).
    pub p95: Ticks,
    /// Exact maximum virtual-time latency.
    pub max: Ticks,
}

/// Renders the per-operation latency table next to the message-count
/// tables the benches already print.
pub fn render_op_stats(stats: &[OpStat]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<22} {:>7} {:>12} {:>12} {:>12}\n",
        "service", "op", "count", "p50", "p95", "max"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<10} {:<22} {:>7} {:>12} {:>12} {:>12}\n",
            s.service,
            s.op,
            s.count,
            s.p50.to_string(),
            s.p95.to_string(),
            s.max.to_string(),
        ));
    }
    out
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes an event stream as JSONL: one flat JSON object per line,
/// hand-rolled like the bench report writer. [`parse_jsonl`] is the
/// exact inverse.
pub fn export_jsonl(events: &[ObsEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let mut line = String::from("{");
        let f_str = |line: &mut String, k: &str, v: &str| {
            if line.len() > 1 {
                line.push(',');
            }
            line.push('"');
            line.push_str(k);
            line.push_str("\":");
            esc(v, line);
        };
        let f_num = |line: &mut String, k: &str, v: u64| {
            if line.len() > 1 {
                line.push(',');
            }
            line.push('"');
            line.push_str(k);
            line.push_str("\":");
            line.push_str(&v.to_string());
        };
        let f_bool = |line: &mut String, k: &str, v: bool| {
            if line.len() > 1 {
                line.push(',');
            }
            line.push('"');
            line.push_str(k);
            line.push_str("\":");
            line.push_str(if v { "true" } else { "false" });
        };
        match ev {
            ObsEvent::SpanOpen {
                id,
                parent,
                service,
                op,
                site,
                at,
            } => {
                f_str(&mut line, "e", "so");
                f_num(&mut line, "id", *id);
                f_num(&mut line, "parent", *parent);
                f_str(&mut line, "svc", service);
                f_str(&mut line, "op", op);
                f_num(&mut line, "site", site.0 as u64);
                f_num(&mut line, "at", at.as_micros());
            }
            ObsEvent::SpanClose { id, outcome, at } => {
                f_str(&mut line, "e", "sc");
                f_num(&mut line, "id", *id);
                f_str(&mut line, "out", outcome);
                f_num(&mut line, "at", at.as_micros());
            }
            ObsEvent::Request {
                span,
                at,
                from,
                to,
                kind,
                reply_kind,
                bytes,
                idempotent,
                outcome,
            } => {
                f_str(&mut line, "e", "rq");
                f_num(&mut line, "span", *span);
                f_num(&mut line, "at", at.as_micros());
                f_num(&mut line, "from", from.0 as u64);
                f_num(&mut line, "to", to.0 as u64);
                f_str(&mut line, "kind", kind);
                f_str(&mut line, "rk", reply_kind);
                f_num(&mut line, "bytes", *bytes);
                f_bool(&mut line, "idem", *idempotent);
                f_str(&mut line, "out", outcome.as_str());
            }
            ObsEvent::Reply {
                span,
                at,
                from,
                to,
                kind,
                bytes,
                outcome,
            } => {
                f_str(&mut line, "e", "rp");
                f_num(&mut line, "span", *span);
                f_num(&mut line, "at", at.as_micros());
                f_num(&mut line, "from", from.0 as u64);
                f_num(&mut line, "to", to.0 as u64);
                f_str(&mut line, "kind", kind);
                f_num(&mut line, "bytes", *bytes);
                f_str(&mut line, "out", outcome.as_str());
            }
            ObsEvent::OneWay {
                span,
                at,
                from,
                to,
                kind,
                bytes,
                outcome,
            } => {
                f_str(&mut line, "e", "ow");
                f_num(&mut line, "span", *span);
                f_num(&mut line, "at", at.as_micros());
                f_num(&mut line, "from", from.0 as u64);
                f_num(&mut line, "to", to.0 as u64);
                f_str(&mut line, "kind", kind);
                f_num(&mut line, "bytes", *bytes);
                f_str(&mut line, "out", outcome.as_str());
            }
            ObsEvent::OneWayLoss { span, at, kind } => {
                f_str(&mut line, "e", "owl");
                f_num(&mut line, "span", *span);
                f_num(&mut line, "at", at.as_micros());
                f_str(&mut line, "kind", kind);
            }
            ObsEvent::Note {
                span,
                at,
                site,
                key,
                label,
                value,
            } => {
                f_str(&mut line, "e", "nt");
                f_num(&mut line, "span", *span);
                f_num(&mut line, "at", at.as_micros());
                f_num(&mut line, "site", site.0 as u64);
                f_str(&mut line, "key", key);
                f_str(&mut line, "label", label);
                f_num(&mut line, "value", *value);
            }
        }
        line.push_str("}\n");
        out.push_str(&line);
    }
    out
}

/// A parsed flat JSON value — strings, unsigned numbers and booleans are
/// the only value types the export emits.
enum JsonVal {
    Str(String),
    Num(u64),
    Bool(bool),
}

/// Parses one flat JSON object (`{"k":"v","n":1,"b":true}`).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let err = |i: usize, what: &str| format!("byte {i}: {what}");
    let skip_ws = |b: &[u8], mut i: usize| {
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
            i += 1;
        }
        i
    };
    fn parse_string(b: &[u8], mut i: usize) -> Result<(String, usize), String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("byte {i}: expected '\"'"));
        }
        i += 1;
        let mut s = String::new();
        while i < b.len() {
            match b[i] {
                b'"' => return Ok((s, i + 1)),
                b'\\' => {
                    i += 1;
                    match b.get(i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(i + 1..i + 5)
                                .ok_or_else(|| format!("byte {i}: short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("byte {i}: bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("byte {i}: bad \\u escape"))?;
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("byte {i}: bad codepoint"))?,
                            );
                            i += 4;
                        }
                        _ => return Err(format!("byte {i}: bad escape")),
                    }
                    i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = i;
                    while i < b.len() && b[i] != b'"' && b[i] != b'\\' {
                        i += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&b[start..i])
                            .map_err(|_| format!("byte {start}: invalid utf-8"))?,
                    );
                }
            }
        }
        Err(format!("byte {i}: unterminated string"))
    }
    i = skip_ws(b, i);
    if b.get(i) != Some(&b'{') {
        return Err(err(i, "expected '{'"));
    }
    i += 1;
    let mut map = BTreeMap::new();
    i = skip_ws(b, i);
    if b.get(i) == Some(&b'}') {
        return Ok(map);
    }
    loop {
        i = skip_ws(b, i);
        let (key, ni) = parse_string(b, i)?;
        i = skip_ws(b, ni);
        if b.get(i) != Some(&b':') {
            return Err(err(i, "expected ':'"));
        }
        i = skip_ws(b, i + 1);
        let val = match b.get(i) {
            Some(b'"') => {
                let (s, ni) = parse_string(b, i)?;
                i = ni;
                JsonVal::Str(s)
            }
            Some(b't') if b[i..].starts_with(b"true") => {
                i += 4;
                JsonVal::Bool(true)
            }
            Some(b'f') if b[i..].starts_with(b"false") => {
                i += 5;
                JsonVal::Bool(false)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let n = std::str::from_utf8(&b[start..i])
                    .expect("digits are utf-8")
                    .parse::<u64>()
                    .map_err(|e| err(start, &format!("bad number: {e}")))?;
                JsonVal::Num(n)
            }
            _ => return Err(err(i, "expected a string, number or bool")),
        };
        map.insert(key, val);
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i = skip_ws(b, i + 1);
                if i != b.len() {
                    return Err(err(i, "trailing characters after object"));
                }
                return Ok(map);
            }
            _ => return Err(err(i, "expected ',' or '}'")),
        }
    }
}

fn get_num(m: &BTreeMap<String, JsonVal>, k: &str) -> Result<u64, String> {
    match m.get(k) {
        Some(JsonVal::Num(n)) => Ok(*n),
        _ => Err(format!("missing numeric field `{k}`")),
    }
}

fn get_str(m: &BTreeMap<String, JsonVal>, k: &str) -> Result<String, String> {
    match m.get(k) {
        Some(JsonVal::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field `{k}`")),
    }
}

fn get_bool(m: &BTreeMap<String, JsonVal>, k: &str) -> Result<bool, String> {
    match m.get(k) {
        Some(JsonVal::Bool(v)) => Ok(*v),
        _ => Err(format!("missing bool field `{k}`")),
    }
}

fn get_outcome(m: &BTreeMap<String, JsonVal>, k: &str) -> Result<SendOutcome, String> {
    let s = get_str(m, k)?;
    SendOutcome::parse(&s).ok_or_else(|| format!("unknown outcome `{s}`"))
}

/// Parses a JSONL event stream produced by [`export_jsonl`]. Blank lines
/// are skipped; any malformed line is an error naming its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<ObsEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let m = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let tag = get_str(&m, "e").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ev = (|| -> Result<ObsEvent, String> {
            Ok(match tag.as_str() {
                "so" => ObsEvent::SpanOpen {
                    id: get_num(&m, "id")?,
                    parent: get_num(&m, "parent")?,
                    service: get_str(&m, "svc")?,
                    op: get_str(&m, "op")?,
                    site: SiteId(get_num(&m, "site")? as u32),
                    at: Ticks::micros(get_num(&m, "at")?),
                },
                "sc" => ObsEvent::SpanClose {
                    id: get_num(&m, "id")?,
                    outcome: get_str(&m, "out")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                },
                "rq" => ObsEvent::Request {
                    span: get_num(&m, "span")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                    from: SiteId(get_num(&m, "from")? as u32),
                    to: SiteId(get_num(&m, "to")? as u32),
                    kind: get_str(&m, "kind")?,
                    reply_kind: get_str(&m, "rk")?,
                    bytes: get_num(&m, "bytes")?,
                    idempotent: get_bool(&m, "idem")?,
                    outcome: get_outcome(&m, "out")?,
                },
                "rp" => ObsEvent::Reply {
                    span: get_num(&m, "span")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                    from: SiteId(get_num(&m, "from")? as u32),
                    to: SiteId(get_num(&m, "to")? as u32),
                    kind: get_str(&m, "kind")?,
                    bytes: get_num(&m, "bytes")?,
                    outcome: get_outcome(&m, "out")?,
                },
                "ow" => ObsEvent::OneWay {
                    span: get_num(&m, "span")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                    from: SiteId(get_num(&m, "from")? as u32),
                    to: SiteId(get_num(&m, "to")? as u32),
                    kind: get_str(&m, "kind")?,
                    bytes: get_num(&m, "bytes")?,
                    outcome: get_outcome(&m, "out")?,
                },
                "owl" => ObsEvent::OneWayLoss {
                    span: get_num(&m, "span")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                    kind: get_str(&m, "kind")?,
                },
                "nt" => ObsEvent::Note {
                    span: get_num(&m, "span")?,
                    at: Ticks::micros(get_num(&m, "at")?),
                    site: SiteId(get_num(&m, "site")? as u32),
                    key: get_str(&m, "key")?,
                    label: get_str(&m, "label")?,
                    value: get_num(&m, "value")?,
                },
                other => return Err(format!("unknown event tag `{other}`")),
            })
        })()
        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.push(ev);
    }
    Ok(out)
}

/// The result of replaying an event stream through the [`audit`]or.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Total events replayed.
    pub events: u64,
    /// Spans opened.
    pub spans: u64,
    /// Request transmission attempts.
    pub requests: u64,
    /// Reply transmission attempts.
    pub replies: u64,
    /// One-way transmission attempts.
    pub one_ways: u64,
    /// Protocol annotations.
    pub notes: u64,
    /// The longest burst of consecutive closed-circuit send outcomes
    /// observed in any span (a burst of *n* implies *n − 1* reopens).
    pub max_reopen_burst: u64,
    /// One-way losses recorded.
    pub one_way_losses: u64,
    /// Every invariant violation found, in replay order.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Whether the trace satisfied every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line summary for bench/CI output.
    pub fn summary(&self) -> String {
        format!(
            "{} events ({} spans, {} req, {} rep, {} one-way, {} notes), \
             max reopen burst {}, {} one-way losses: {}",
            self.events,
            self.spans,
            self.requests,
            self.replies,
            self.one_ways,
            self.notes,
            self.max_reopen_burst,
            self.one_way_losses,
            if self.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// Minimum virtual-time gap between two successful `css.claim`s for one
/// filegroup. The handoff mechanism refuses a new-epoch claim arriving
/// within this window of the current owner's own claim, so even a
/// flapping placement policy cannot thrash the synchronization role; the
/// auditor checks the same constant offline (invariant 9 of [`audit`]).
pub const CSS_CLAIM_COOLDOWN: Ticks = Ticks::millis(5);

/// Per-span state tracked during the audit replay.
#[derive(Debug, Default)]
struct SpanAudit {
    /// A reply attempt in this span failed; only idempotent requests
    /// may be re-issued afterwards.
    reply_failed: bool,
    /// Consecutive closed-circuit send outcomes (reset on delivery).
    cc_burst: u64,
    /// One-way attempts, deliveries and recorded losses.
    ow_attempts: u64,
    ow_delivered: u64,
    ow_losses: u64,
}

/// Replays an exported event stream and checks the protocol invariants
/// the engine and the shadow-page commit protocol promise:
///
/// 1. **Reply matching** — every reply attempt (whatever its outcome)
///    corresponds to a request that was delivered and not yet answered;
///    every delivered request is eventually answered.
/// 2. **Idempotent re-issue** — after a failed reply, further request
///    attempts in the same span are only legal for idempotent messages.
/// 3. **Bounded reopens** — consecutive closed-circuit outcomes in one
///    span never exceed
///    [`MAX_CONSECUTIVE_REOPENS`](crate::MAX_CONSECUTIVE_REOPENS) + 1
///    (*n* consecutive closures imply *n − 1* reopens, and the engine
///    resets its reopen budget only when a send reaches the wire).
/// 4. **Commit atomicity** — `commit.begin` / `commit.end` annotations
///    for one object never nest, always pair, and no `read.page` of that
///    object serves the committing (or a newer) version in between
///    (§2.3.4: the shadow page is invisible until the commit installs
///    it).
/// 5. **One-way accounting** — a span's one-way attempts end in exactly
///    one delivery or exactly one recorded loss, never both, never
///    neither.
/// 6. **Span hygiene** — closes match opens and nothing is left open.
/// 7. **CSS-epoch monotonicity** — `css.claim` notes for one filegroup
///    carry strictly increasing epochs: at most one site claims the
///    synchronization role per epoch, and the role never rolls backwards.
/// 8. **Quarantine isolation** — no `commit.begin` is emitted at a site
///    inside a `health.quarantine` … `health.readmit` window: a site the
///    health monitor has isolated for gray failure must not acknowledge
///    commits.
/// 9. **Claim cooldown** — two successful `css.claim`s for one filegroup
///    are never closer than [`CSS_CLAIM_COOLDOWN`] on the virtual clock:
///    the handoff mechanism's rate limit holds even against flapping
///    placement policies (no handoff storms).
/// 10. **Epoch merge order** — `settle.deliver` annotations inside one
///     `settle.epoch` span are strictly increasing in (post time, source
///     site, per-source sequence number): the site-sharded run queues
///     delivered the epoch's buffered messages in the simulation engine's
///     documented total order ([`crate::engine::PostStamp`]). The label
///     carries `"{from}->{to}@{post time in µs}"` and the value carries
///     the sequence number; a `settle.deliver` outside a `settle.epoch`
///     span, or with a malformed label, is itself a violation. Two
///     properties hold across the whole stream, not just within a span:
///     per-source sequence numbers never repeat (a duplicate `(source,
///     seq)` means a post was delivered twice), and within one (source,
///     dest) queue seqs only grow (the run queues are FIFO per ordered
///     site pair — a shard merge that reordered them would surface
///     here even if each span looked internally consistent).
/// 11. **Lease coherence** — after a `lease.recall` note targeting a
///     (site, file) pair, no `namecache.hit` note is emitted at that site
///     for that file until a `lease.grant` note re-arms it: a recalled
///     holder must never keep serving the cached entry. The lease notes
///     and the hit notes share the file-id label, so the check is a plain
///     set membership; the plural gauge mirrors (`lease.recalls` etc.)
///     use different keys and never land here.
pub fn audit(events: &[ObsEvent]) -> AuditReport {
    let mut report = AuditReport {
        events: events.len() as u64,
        ..AuditReport::default()
    };
    // Delivered-but-unanswered requests: (requester, server, reply kind)
    // -> outstanding count.
    let mut outstanding: BTreeMap<(u32, u32, String), u64> = BTreeMap::new();
    let mut spans: BTreeMap<u64, SpanAudit> = BTreeMap::new();
    let mut open_spans: BTreeMap<u64, String> = BTreeMap::new();
    // Object label -> version-vector total being committed.
    let mut open_commits: BTreeMap<String, u64> = BTreeMap::new();
    // Filegroup label -> newest CSS-claim epoch seen.
    let mut css_epochs: BTreeMap<String, u64> = BTreeMap::new();
    // Filegroup label -> time of the newest accepted CSS claim.
    let mut css_claim_at: BTreeMap<String, Ticks> = BTreeMap::new();
    // Sites currently inside a quarantine window.
    let mut quarantined: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    // settle.epoch span id -> stamp of the newest delivery it reported.
    let mut settle_last: BTreeMap<u64, (u64, u32, u64)> = BTreeMap::new();
    // Every (source, seq) ever delivered: per-source seqs never repeat,
    // in any span.
    let mut settle_seen: std::collections::BTreeSet<(u32, u64)> =
        std::collections::BTreeSet::new();
    // (source, dest) -> newest seq delivered on that queue (FIFO per
    // ordered site pair, across spans).
    let mut settle_fifo: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    // (site, file label) pairs whose coherence lease was recalled and not
    // re-granted: a namecache.hit there is a stale serve.
    let mut lease_recalled: std::collections::BTreeSet<(u32, String)> =
        std::collections::BTreeSet::new();

    for ev in events {
        match ev {
            ObsEvent::SpanOpen { id, op, at, .. } => {
                report.spans += 1;
                if open_spans.insert(*id, op.clone()).is_some() {
                    report
                        .violations
                        .push(format!("t={}: span {id} opened twice", at));
                }
                spans.entry(*id).or_default();
            }
            ObsEvent::SpanClose { id, at, .. } => {
                if open_spans.remove(id).is_none() {
                    report
                        .violations
                        .push(format!("t={}: close of unknown span {id}", at));
                    continue;
                }
                let sa = spans.entry(*id).or_default();
                if sa.ow_attempts > 0 {
                    let ok = (sa.ow_delivered == 1 && sa.ow_losses == 0)
                        || (sa.ow_delivered == 0 && sa.ow_losses == 1);
                    if !ok {
                        report.violations.push(format!(
                            "t={}: span {id} one-way accounting broken: \
                             {} attempts, {} delivered, {} losses \
                             (want exactly one delivery xor one loss)",
                            at, sa.ow_attempts, sa.ow_delivered, sa.ow_losses
                        ));
                    }
                }
            }
            ObsEvent::Request {
                span,
                at,
                from,
                to,
                kind,
                reply_kind,
                idempotent,
                outcome,
                ..
            } => {
                report.requests += 1;
                let sa = spans.entry(*span).or_default();
                if sa.reply_failed && !idempotent {
                    report.violations.push(format!(
                        "t={}: span {span} re-issued non-idempotent `{kind}` \
                         after a lost reply",
                        at
                    ));
                }
                match outcome {
                    SendOutcome::CircuitClosed => {
                        sa.cc_burst += 1;
                        report.max_reopen_burst = report.max_reopen_burst.max(sa.cc_burst);
                        if sa.cc_burst > crate::MAX_CONSECUTIVE_REOPENS as u64 + 1 {
                            report.violations.push(format!(
                                "t={}: span {span} exceeded the reopen budget on \
                                 `{kind}`: {} consecutive closed-circuit sends \
                                 (bound {} reopens)",
                                at,
                                sa.cc_burst,
                                crate::MAX_CONSECUTIVE_REOPENS
                            ));
                        }
                    }
                    SendOutcome::Delivered => {
                        sa.cc_burst = 0;
                        *outstanding
                            .entry((from.0, to.0, reply_kind.clone()))
                            .or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
            ObsEvent::Reply {
                span,
                at,
                from,
                to,
                kind,
                outcome,
                ..
            } => {
                report.replies += 1;
                // The reply travels server -> requester; the request it
                // answers was keyed (requester, server, reply kind).
                let key = (to.0, from.0, kind.clone());
                match outstanding.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        if *n == 0 {
                            outstanding.remove(&key);
                        }
                    }
                    _ => {
                        report.violations.push(format!(
                            "t={}: orphan reply `{kind}` {from} -> {to} \
                             (no outstanding request)",
                            at
                        ));
                    }
                }
                let sa = spans.entry(*span).or_default();
                match outcome {
                    SendOutcome::Delivered => sa.reply_failed = false,
                    _ => sa.reply_failed = true,
                }
            }
            ObsEvent::OneWay {
                span, at, outcome, ..
            } => {
                report.one_ways += 1;
                let sa = spans.entry(*span).or_default();
                sa.ow_attempts += 1;
                match outcome {
                    SendOutcome::Delivered => {
                        sa.cc_burst = 0;
                        sa.ow_delivered += 1;
                    }
                    SendOutcome::CircuitClosed => {
                        sa.cc_burst += 1;
                        report.max_reopen_burst = report.max_reopen_burst.max(sa.cc_burst);
                        if sa.cc_burst > crate::MAX_CONSECUTIVE_REOPENS as u64 + 1 {
                            report.violations.push(format!(
                                "t={}: span {span} exceeded the reopen budget on a \
                                 one-way send: {} consecutive closed-circuit sends \
                                 (bound {} reopens)",
                                at,
                                sa.cc_burst,
                                crate::MAX_CONSECUTIVE_REOPENS
                            ));
                        }
                    }
                    _ => {}
                }
            }
            ObsEvent::OneWayLoss { span, kind, at } => {
                report.one_way_losses += 1;
                let sa = spans.entry(*span).or_default();
                sa.ow_losses += 1;
                if sa.ow_delivered > 0 {
                    report.violations.push(format!(
                        "t={}: span {span} recorded a one-way loss of `{kind}` \
                         after a successful delivery",
                        at
                    ));
                }
            }
            ObsEvent::Note {
                span,
                at,
                site,
                key,
                label,
                value,
            } => {
                report.notes += 1;
                // The guards carry the bookkeeping (insert/remove) so it
                // runs whether or not the arm reports a violation.
                match key.as_str() {
                    "commit.begin" => {
                        if quarantined.contains(&site.0) {
                            report.violations.push(format!(
                                "t={}: commit.begin for `{label}` at quarantined \
                                 site {site} (isolation breached)",
                                at
                            ));
                        }
                        if open_commits.insert(label.clone(), *value).is_some() {
                            report.violations.push(format!(
                                "t={}: nested commit.begin for `{label}`",
                                at
                            ));
                        }
                    }
                    "commit.end" if open_commits.remove(label).is_none() => {
                        report.violations.push(format!(
                            "t={}: commit.end for `{label}` without commit.begin",
                            at
                        ));
                    }
                    "css.claim" => {
                        let prev = css_epochs.get(label).copied();
                        if prev.is_some_and(|p| *value <= p) {
                            report.violations.push(format!(
                                "t={}: css.claim for `{label}` epoch {value} does not \
                                 exceed prior epoch {} (at most one CSS per epoch)",
                                at,
                                prev.unwrap_or(0)
                            ));
                        } else {
                            css_epochs.insert(label.clone(), *value);
                            if let Some(&prev_at) = css_claim_at.get(label) {
                                if at.saturating_sub(prev_at) < CSS_CLAIM_COOLDOWN {
                                    report.violations.push(format!(
                                        "t={}: css.claim for `{label}` only {}us after \
                                         the previous claim (cooldown {}us)",
                                        at,
                                        at.saturating_sub(prev_at).as_micros(),
                                        CSS_CLAIM_COOLDOWN.as_micros()
                                    ));
                                }
                            }
                            css_claim_at.insert(label.clone(), *at);
                        }
                    }
                    "health.quarantine" => {
                        quarantined.insert(site.0);
                    }
                    "health.readmit" => {
                        quarantined.remove(&site.0);
                    }
                    "settle.deliver" => {
                        // Label "{from}->{to}@{post µs}", value = seq.
                        let stamp = (|| {
                            let (rest, at_s) = label.rsplit_once('@')?;
                            let (from_s, to_s) = rest.split_once("->")?;
                            let from: u32 = from_s.strip_prefix('S')?.parse().ok()?;
                            let to: u32 = to_s.strip_prefix('S')?.parse().ok()?;
                            let at_us: u64 = at_s.parse().ok()?;
                            Some((at_us, from, to, *value))
                        })();
                        if open_spans.get(span).map(String::as_str) != Some("settle.epoch") {
                            report.violations.push(format!(
                                "t={}: settle.deliver `{label}` outside a \
                                 settle.epoch span",
                                at
                            ));
                        }
                        match stamp {
                            None => report.violations.push(format!(
                                "t={}: malformed settle.deliver label `{label}`",
                                at
                            )),
                            Some((at_us, from, to, seq)) => {
                                let stamp = (at_us, from, seq);
                                if let Some(&prev) = settle_last.get(span) {
                                    if stamp <= prev {
                                        report.violations.push(format!(
                                            "t={}: settle.deliver `{label}` seq {value} \
                                             contradicts the epoch merge order (previous \
                                             delivery posted t={}us by S{} seq {})",
                                            at, prev.0, prev.1, prev.2
                                        ));
                                    }
                                }
                                settle_last.insert(*span, stamp);
                                if !settle_seen.insert((from, seq)) {
                                    report.violations.push(format!(
                                        "t={}: settle.deliver `{label}` repeats source \
                                         seq {seq} of S{from} (a post delivered twice)",
                                        at
                                    ));
                                }
                                if let Some(&prev_seq) = settle_fifo.get(&(from, to)) {
                                    if seq <= prev_seq {
                                        report.violations.push(format!(
                                            "t={}: settle.deliver `{label}` seq {seq} \
                                             breaks FIFO order on the S{from}->S{to} \
                                             queue (seq {prev_seq} already delivered)",
                                            at
                                        ));
                                    }
                                }
                                settle_fifo.insert((from, to), seq);
                            }
                        }
                    }
                    "lease.recall" => {
                        lease_recalled.insert((site.0, label.clone()));
                    }
                    "lease.grant" => {
                        lease_recalled.remove(&(site.0, label.clone()));
                    }
                    "namecache.hit" if lease_recalled.contains(&(site.0, label.clone())) => {
                        report.violations.push(format!(
                            "t={}: namecache.hit for `{label}` at {site} after \
                             its lease was recalled and before any re-grant \
                             (stale serve)",
                            at
                        ));
                    }
                    "read.page" => {
                        if let Some(&committing) = open_commits.get(label) {
                            if *value >= committing {
                                report.violations.push(format!(
                                    "t={}: read of `{label}` observed version {value} \
                                     while version {committing} was mid-commit \
                                     (shadow page leaked)",
                                    at
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    for (id, op) in &open_spans {
        report
            .violations
            .push(format!("span {id} (`{op}`) never closed"));
    }
    for ((req, srv, kind), n) in &outstanding {
        report.violations.push(format!(
            "{n} delivered `{kind}`-awaiting request(s) S{req} -> S{srv} never answered"
        ));
    }
    for (label, v) in &open_commits {
        report
            .violations
            .push(format!("commit of `{label}` (version {v}) never completed"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for us in [0u64, 1, 1, 3, 100, 1000] {
            h.record(Ticks::micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), Ticks::micros(1000));
        // rank(0.5 * 6) = 3 -> third sample in bucket order: the 1s live
        // in bucket 1 (upper edge 1), 3 in bucket 2 (upper edge 3).
        assert_eq!(h.quantile(0.5), Ticks::micros(1));
        assert_eq!(h.quantile(1.0), Ticks::micros(1023));
        assert_eq!(Histogram::new().quantile(0.5), Ticks::ZERO);
    }

    #[test]
    fn histograms_with_identical_samples_are_equal() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for us in [5u64, 90, 700, 700, 12_000] {
            a.record(Ticks::micros(us));
            b.record(Ticks::micros(us));
        }
        assert_eq!(a, b);
        b.record(Ticks::micros(5));
        assert_ne!(a, b);
    }

    #[test]
    fn observer_nests_spans_and_feeds_histograms() {
        let mut o = Observer::new();
        assert_eq!(o.span_open(Ticks::ZERO, "fs", "open", SiteId(0)), 0, "disabled");
        o.set_enabled(true);
        let outer = o.span_open(Ticks::micros(10), "fs", "open", SiteId(0));
        let inner = o.span_open(Ticks::micros(12), "fs", "OPEN req", SiteId(0));
        o.note(Ticks::micros(13), SiteId(1), "read.page", "1:2", 3);
        o.span_close(Ticks::micros(20), inner, "ok");
        o.span_close(Ticks::micros(30), outer, "ok");
        let evs = o.take_events();
        assert_eq!(evs.len(), 5);
        match &evs[1] {
            ObsEvent::SpanOpen { parent, .. } => assert_eq!(*parent, outer),
            other => panic!("expected SpanOpen, got {other:?}"),
        }
        match &evs[2] {
            ObsEvent::Note { span, .. } => assert_eq!(*span, inner),
            other => panic!("expected Note, got {other:?}"),
        }
        let stats = o.op_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].op, "OPEN req");
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[1].op, "open");
        assert_eq!(stats[1].max, Ticks::micros(20));
    }

    #[test]
    fn observer_caps_events_and_counts_truncation() {
        let mut o = Observer::new();
        o.set_enabled(true);
        for _ in 0..(OBS_CAP + 7) {
            o.note(Ticks::ZERO, SiteId(0), "k", "l", 0);
        }
        assert_eq!(o.truncated(), 7);
        assert_eq!(o.take_events().len(), OBS_CAP);
        assert_eq!(o.truncated(), 0, "take resets the counter");
    }

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::SpanOpen {
                id: 1,
                parent: 0,
                service: "fs".into(),
                op: "OPEN req".into(),
                site: SiteId(0),
                at: Ticks::micros(5),
            },
            ObsEvent::Request {
                span: 1,
                at: Ticks::micros(6),
                from: SiteId(0),
                to: SiteId(1),
                kind: "OPEN req".into(),
                reply_kind: "OPEN resp".into(),
                bytes: 64,
                idempotent: true,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::Reply {
                span: 1,
                at: Ticks::micros(9),
                from: SiteId(1),
                to: SiteId(0),
                kind: "OPEN resp".into(),
                bytes: 128,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::SpanClose {
                id: 1,
                outcome: "ok".into(),
                at: Ticks::micros(9),
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_event_shape() {
        let mut evs = sample_events();
        evs.push(ObsEvent::OneWay {
            span: 0,
            at: Ticks::micros(11),
            from: SiteId(2),
            to: SiteId(3),
            kind: "COMMIT \"notify\"\\x".into(),
            bytes: 32,
            outcome: SendOutcome::Dropped,
        });
        evs.push(ObsEvent::OneWayLoss {
            span: 0,
            at: Ticks::micros(12),
            kind: "COMMIT \"notify\"\\x".into(),
        });
        evs.push(ObsEvent::Note {
            span: 0,
            at: Ticks::micros(13),
            site: SiteId(1),
            key: "commit.begin".into(),
            label: "1:\n2".into(),
            value: 42,
        });
        let text = export_jsonl(&evs);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, evs);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"e\":\"so\"").is_err(), "unterminated");
        assert!(parse_jsonl("{\"e\":\"zz\"}").is_err(), "unknown tag");
        assert!(
            parse_jsonl("{\"e\":\"sc\",\"id\":1,\"at\":2}").is_err(),
            "missing field"
        );
    }

    #[test]
    fn audit_accepts_a_clean_exchange() {
        let report = audit(&sample_events());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.spans, 1);
        assert_eq!(report.requests, 1);
        assert_eq!(report.replies, 1);
    }

    #[test]
    fn audit_rejects_an_orphan_reply() {
        let mut evs = sample_events();
        evs.insert(
            3,
            ObsEvent::Reply {
                span: 1,
                at: Ticks::micros(10),
                from: SiteId(1),
                to: SiteId(0),
                kind: "OPEN resp".into(),
                bytes: 128,
                outcome: SendOutcome::Delivered,
            },
        );
        let report = audit(&evs);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("orphan reply"),
            "got: {:?}",
            report.violations
        );
    }

    #[test]
    fn audit_rejects_an_unanswered_request() {
        let mut evs = sample_events();
        evs.remove(2); // delete the reply
        let report = audit(&evs);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("never answered")));
    }

    fn note(at: u64, site: u32, key: &str, label: &str, value: u64) -> ObsEvent {
        ObsEvent::Note {
            span: 0,
            at: Ticks::micros(at),
            site: SiteId(site),
            key: key.into(),
            label: label.into(),
            value,
        }
    }

    #[test]
    fn audit_rejects_nonmonotone_css_claim() {
        // Two claims with increasing epochs (a cooldown apart) are fine…
        let ok = vec![
            note(1, 1, "css.claim", "fg0", 1),
            note(6_000, 2, "css.claim", "fg0", 2),
            note(6_001, 1, "css.claim", "fg1", 1), // other filegroup: own counter
        ];
        assert!(audit(&ok).is_clean());
        // …but a duplicate or stale epoch means two sites claimed the same
        // epoch, which the handoff protocol must never allow.
        let dup = vec![
            note(1, 1, "css.claim", "fg0", 3),
            note(2, 2, "css.claim", "fg0", 3),
        ];
        let report = audit(&dup);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("one CSS per epoch"),
            "got: {:?}",
            report.violations
        );
        let stale = vec![
            note(1, 1, "css.claim", "fg0", 5),
            note(2, 2, "css.claim", "fg0", 4),
        ];
        assert!(!audit(&stale).is_clean());
    }

    /// Invariant 9: legitimate (epoch-increasing) claims for one
    /// filegroup still violate the audit if they land inside the claim
    /// cooldown — the signature of a handoff storm.
    #[test]
    fn audit_rejects_claims_inside_the_cooldown() {
        let gap = CSS_CLAIM_COOLDOWN.as_micros();
        let storm = vec![
            note(1, 1, "css.claim", "fg0", 1),
            note(1 + gap - 1, 2, "css.claim", "fg0", 2),
        ];
        let report = audit(&storm);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("cooldown"),
            "got: {:?}",
            report.violations
        );
        // Exactly a cooldown apart is legal; other filegroups never
        // interfere with fg0's window.
        let calm = vec![
            note(1, 1, "css.claim", "fg0", 1),
            note(2, 2, "css.claim", "fg9", 7),
            note(1 + gap, 2, "css.claim", "fg0", 2),
            note(1 + 2 * gap, 3, "css.claim", "fg0", 3),
        ];
        assert!(audit(&calm).is_clean(), "{:?}", audit(&calm).violations);
    }

    #[test]
    fn audit_rejects_commit_at_quarantined_site() {
        // A commit bracketed inside another site's quarantine window is
        // fine; the same bracket at the quarantined site itself is the
        // isolation breach the invariant exists to catch.
        let ok = vec![
            note(1, 2, "health.quarantine", "S2", 40),
            note(2, 1, "commit.begin", "0:5", 1),
            note(3, 1, "commit.end", "0:5", 1),
            note(4, 2, "health.readmit", "S2", 0),
        ];
        assert!(audit(&ok).is_clean(), "{:?}", audit(&ok).violations);
        let breach = vec![
            note(1, 2, "health.quarantine", "S2", 40),
            note(2, 2, "commit.begin", "0:5", 1),
            note(3, 2, "commit.end", "0:5", 1),
        ];
        let report = audit(&breach);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("quarantined"),
            "got: {:?}",
            report.violations
        );
        // After readmission the site may commit again.
        let readmitted = vec![
            note(1, 2, "health.quarantine", "S2", 40),
            note(2, 2, "health.readmit", "S2", 0),
            note(3, 2, "commit.begin", "0:5", 1),
            note(4, 2, "commit.end", "0:5", 1),
        ];
        assert!(audit(&readmitted).is_clean());
    }

    /// Invariant 11: a locally-served `namecache.hit` after the lease on
    /// that (site, inode) was recalled — and before any re-grant — is a
    /// stale serve the coherence protocol must never allow.
    #[test]
    fn audit_rejects_hit_after_lease_recall() {
        // Hits before the recall, at other sites, or for other inodes
        // are all fine; so is a hit after a fresh grant.
        let ok = vec![
            note(1, 1, "lease.grant", "0:7", 3),
            note(2, 1, "namecache.hit", "0:7", 3),
            note(3, 1, "lease.recall", "0:7", 0),
            note(4, 2, "namecache.hit", "0:7", 3), // other site
            note(5, 1, "namecache.hit", "0:9", 1), // other inode
            note(6, 1, "lease.grant", "0:7", 4),
            note(7, 1, "namecache.hit", "0:7", 4), // re-granted
        ];
        assert!(audit(&ok).is_clean(), "{:?}", audit(&ok).violations);
        let stale = vec![
            note(1, 1, "lease.grant", "0:7", 3),
            note(2, 1, "lease.recall", "0:7", 0),
            note(3, 1, "namecache.hit", "0:7", 3),
        ];
        let report = audit(&stale);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("stale serve"),
            "got: {:?}",
            report.violations
        );
        // The plural gauge keys exported by the bench harness never arm
        // or trip the invariant.
        let gauges = vec![
            note(1, 1, "lease.recall", "0:7", 0),
            note(2, 0, "lease.grants", "cluster", 5),
            note(3, 0, "lease.recalls", "cluster", 1),
            note(4, 1, "lease.grant", "0:7", 4),
            note(5, 1, "namecache.hit", "0:7", 4),
        ];
        assert!(audit(&gauges).is_clean(), "{:?}", audit(&gauges).violations);
    }

    #[test]
    fn audit_rejects_over_budget_reopens() {
        let mut evs = vec![ObsEvent::SpanOpen {
            id: 1,
            parent: 0,
            service: "fs".into(),
            op: "READ req".into(),
            site: SiteId(0),
            at: Ticks::ZERO,
        }];
        for i in 0..(crate::MAX_CONSECUTIVE_REOPENS as u64 + 2) {
            evs.push(ObsEvent::Request {
                span: 1,
                at: Ticks::micros(i),
                from: SiteId(0),
                to: SiteId(1),
                kind: "READ req".into(),
                reply_kind: "READ resp".into(),
                bytes: 32,
                idempotent: true,
                outcome: SendOutcome::CircuitClosed,
            });
        }
        evs.push(ObsEvent::SpanClose {
            id: 1,
            outcome: "circuit-flapping".into(),
            at: Ticks::micros(99),
        });
        let report = audit(&evs);
        assert!(!report.is_clean());
        assert!(
            report.violations[0].contains("reopen budget"),
            "got: {:?}",
            report.violations
        );
        // One closure fewer stays within budget.
        let mut within = evs.clone();
        within.remove(within.len() - 2);
        assert!(audit(&within).is_clean());
    }

    #[test]
    fn audit_rejects_non_idempotent_reissue() {
        let evs = vec![
            ObsEvent::SpanOpen {
                id: 1,
                parent: 0,
                service: "fs".into(),
                op: "COMMIT req".into(),
                site: SiteId(0),
                at: Ticks::ZERO,
            },
            ObsEvent::Request {
                span: 1,
                at: Ticks::micros(1),
                from: SiteId(0),
                to: SiteId(1),
                kind: "COMMIT req".into(),
                reply_kind: "COMMIT resp".into(),
                bytes: 64,
                idempotent: false,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::Reply {
                span: 1,
                at: Ticks::micros(2),
                from: SiteId(1),
                to: SiteId(0),
                kind: "COMMIT resp".into(),
                bytes: 16,
                outcome: SendOutcome::ReplyLost,
            },
            ObsEvent::Request {
                span: 1,
                at: Ticks::micros(3),
                from: SiteId(0),
                to: SiteId(1),
                kind: "COMMIT req".into(),
                reply_kind: "COMMIT resp".into(),
                bytes: 64,
                idempotent: false,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::Reply {
                span: 1,
                at: Ticks::micros(4),
                from: SiteId(1),
                to: SiteId(0),
                kind: "COMMIT resp".into(),
                bytes: 16,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::SpanClose {
                id: 1,
                outcome: "ok".into(),
                at: Ticks::micros(5),
            },
        ];
        let report = audit(&evs);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("non-idempotent")));
    }

    #[test]
    fn audit_rejects_a_read_inside_a_commit() {
        let evs = vec![
            ObsEvent::Note {
                span: 0,
                at: Ticks::micros(1),
                site: SiteId(1),
                key: "commit.begin".into(),
                label: "1:7".into(),
                value: 4,
            },
            ObsEvent::Note {
                span: 0,
                at: Ticks::micros(2),
                site: SiteId(1),
                key: "read.page".into(),
                label: "1:7".into(),
                value: 4,
            },
            ObsEvent::Note {
                span: 0,
                at: Ticks::micros(3),
                site: SiteId(1),
                key: "commit.end".into(),
                label: "1:7".into(),
                value: 4,
            },
        ];
        let report = audit(&evs);
        assert!(
            report.violations.iter().any(|v| v.contains("mid-commit")),
            "got: {:?}",
            report.violations
        );
        // A read of the *previous* version during the commit is legal.
        let mut old_read = evs.clone();
        if let ObsEvent::Note { value, .. } = &mut old_read[1] {
            *value = 3;
        }
        assert!(audit(&old_read).is_clean());
    }

    #[test]
    fn audit_rejects_unbalanced_commits_and_spans() {
        let evs = vec![
            ObsEvent::SpanOpen {
                id: 1,
                parent: 0,
                service: "fs".into(),
                op: "commit".into(),
                site: SiteId(0),
                at: Ticks::ZERO,
            },
            ObsEvent::Note {
                span: 1,
                at: Ticks::micros(1),
                site: SiteId(1),
                key: "commit.begin".into(),
                label: "1:9".into(),
                value: 2,
            },
        ];
        let report = audit(&evs);
        assert!(report.violations.iter().any(|v| v.contains("never closed")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("never completed")));
    }

    #[test]
    fn audit_rejects_a_loss_after_delivery() {
        let evs = vec![
            ObsEvent::SpanOpen {
                id: 1,
                parent: 0,
                service: "fs".into(),
                op: "COMMIT notify".into(),
                site: SiteId(0),
                at: Ticks::ZERO,
            },
            ObsEvent::OneWay {
                span: 1,
                at: Ticks::micros(1),
                from: SiteId(0),
                to: SiteId(1),
                kind: "COMMIT notify".into(),
                bytes: 32,
                outcome: SendOutcome::Delivered,
            },
            ObsEvent::OneWayLoss {
                span: 1,
                at: Ticks::micros(2),
                kind: "COMMIT notify".into(),
            },
            ObsEvent::SpanClose {
                id: 1,
                outcome: "ok".into(),
                at: Ticks::micros(3),
            },
        ];
        let report = audit(&evs);
        assert!(!report.is_clean());
    }

    fn settle_note(span: u64, at_us: u64, label: &str, seq: u64) -> ObsEvent {
        ObsEvent::Note {
            span,
            at: Ticks::micros(at_us),
            site: SiteId(0),
            key: "settle.deliver".into(),
            label: label.into(),
            value: seq,
        }
    }

    fn settle_span(evs: Vec<ObsEvent>) -> Vec<ObsEvent> {
        let mut all = vec![ObsEvent::SpanOpen {
            id: 7,
            parent: 0,
            service: "fs".into(),
            op: "settle.epoch".into(),
            site: SiteId(0),
            at: Ticks::micros(10),
        }];
        all.extend(evs);
        all.push(ObsEvent::SpanClose {
            id: 7,
            outcome: "ok".into(),
            at: Ticks::micros(20),
        });
        all
    }

    #[test]
    fn audit_accepts_ordered_epoch_deliveries() {
        let evs = settle_span(vec![
            settle_note(7, 11, "S0->S2@5", 0),
            settle_note(7, 12, "S0->S1@5", 1),
            settle_note(7, 13, "S3->S1@5", 0),
            settle_note(7, 14, "S1->S0@9", 4),
        ]);
        let report = audit(&evs);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// Invariant 10 rejection self-test: a delivery whose (post time,
    /// source, seq) stamp does not exceed its predecessor's contradicts
    /// the engine's documented epoch merge order.
    #[test]
    fn audit_rejects_out_of_order_epoch_deliveries() {
        let evs = settle_span(vec![
            settle_note(7, 11, "S2->S0@9", 0),
            settle_note(7, 12, "S1->S0@9", 0),
        ]);
        let report = audit(&evs);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("contradicts the epoch merge order")));

        let evs = settle_span(vec![
            settle_note(7, 11, "S1->S0@9", 3),
            settle_note(7, 12, "S1->S2@9", 3),
        ]);
        assert!(!audit(&evs).is_clean(), "equal stamps are not increasing");
    }

    #[test]
    fn audit_rejects_stray_or_malformed_settle_deliveries() {
        let report = audit(&[settle_note(0, 5, "S1->S0@9", 0)]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("outside a settle.epoch span")));

        let report = audit(&settle_span(vec![settle_note(7, 11, "nonsense", 0)]));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("malformed settle.deliver label")));
    }

    /// Invariant 10 cross-span rejection self-test: one post delivered
    /// twice — the same (source, seq) in two different, individually
    /// well-ordered `settle.epoch` spans.
    #[test]
    fn audit_rejects_duplicate_source_seqs_across_spans() {
        let mut evs = settle_span(vec![settle_note(7, 11, "S1->S0@9", 3)]);
        evs.extend([
            ObsEvent::SpanOpen {
                id: 8,
                parent: 0,
                service: "fs".into(),
                op: "settle.epoch".into(),
                site: SiteId(0),
                at: Ticks::micros(30),
            },
            settle_note(8, 31, "S1->S0@25", 3),
            ObsEvent::SpanClose {
                id: 8,
                outcome: "ok".into(),
                at: Ticks::micros(40),
            },
        ]);
        let report = audit(&evs);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("repeats source seq")),
            "{:?}",
            report.violations
        );
    }

    /// Invariant 10 per-queue rejection self-test: (post time, source,
    /// seq) strictly increases — the span-local merge-order check is
    /// satisfied — yet the S1->S0 queue delivers seq 5 before seq 3, a
    /// FIFO inversion only the cross-delivery queue check can see.
    #[test]
    fn audit_rejects_fifo_inversion_within_a_queue() {
        let evs = settle_span(vec![
            settle_note(7, 11, "S1->S0@9", 5),
            settle_note(7, 12, "S1->S0@10", 3),
        ]);
        let report = audit(&evs);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("breaks FIFO order")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn histogram_merge_matches_union_of_samples() {
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for us in [0u64, 3, 90, 1500] {
            a.record(Ticks::micros(us));
            whole.record(Ticks::micros(us));
        }
        for us in [7u64, 90, 40_000] {
            b.record(Ticks::micros(us));
            whole.record(Ticks::micros(us));
        }
        a.merge_from(&b);
        assert_eq!(a, whole);
    }

    /// The shard absorb path must renumber span ids into the parent's
    /// space (parents included) and shift every timestamp, so a merged
    /// stream is indistinguishable from one the parent recorded itself.
    #[test]
    fn absorb_segment_renumbers_spans_and_shifts_time() {
        let mut parent = Observer::new();
        parent.set_enabled(true);
        // Parent has already used ids 1 and 2.
        let a = parent.span_open(Ticks::micros(1), "fs", "open", SiteId(0));
        let b = parent.span_open(Ticks::micros(2), "fs", "OPEN req", SiteId(0));
        parent.span_close(Ticks::micros(3), b, "ok");
        parent.span_close(Ticks::micros(4), a, "ok");

        let mut shard = parent.fork_shard();
        assert!(shard.enabled());
        let outer = shard.span_open(Ticks::micros(4), "fs", "read", SiteId(1));
        let inner = shard.span_open(Ticks::micros(5), "fs", "READ req", SiteId(1));
        shard.note(Ticks::micros(6), SiteId(1), "read.page", "1:2", 1);
        shard.span_close(Ticks::micros(7), inner, "ok");
        shard.span_close(Ticks::micros(9), outer, "ok");
        assert_eq!((outer, inner), (1, 2), "shard ids are local");

        let (events, truncated, hists) = shard.into_shard_parts();
        assert_eq!(truncated, 0);
        let mut remap = BTreeMap::new();
        parent.absorb_segment(&events, Ticks::micros(100), &mut remap);
        parent.merge_hists(hists);

        let merged = parent.take_events();
        match &merged[4] {
            ObsEvent::SpanOpen { id, parent: p, at, .. } => {
                assert_eq!((*id, *p), (3, 0), "renumbered past the parent's ids");
                assert_eq!(*at, Ticks::micros(104), "shifted");
            }
            other => panic!("expected SpanOpen, got {other:?}"),
        }
        match &merged[5] {
            ObsEvent::SpanOpen { id, parent: p, .. } => assert_eq!((*id, *p), (4, 3)),
            other => panic!("expected SpanOpen, got {other:?}"),
        }
        match &merged[6] {
            ObsEvent::Note { span, at, .. } => {
                assert_eq!(*span, 4);
                assert_eq!(*at, Ticks::micros(106));
            }
            other => panic!("expected Note, got {other:?}"),
        }
        match &merged[7] {
            ObsEvent::SpanClose { id, .. } => assert_eq!(*id, 4),
            other => panic!("expected SpanClose, got {other:?}"),
        }
        // A fresh span in the parent continues the renumbered sequence.
        let next = parent.span_open(Ticks::micros(200), "fs", "stat", SiteId(0));
        assert_eq!(next, 5);
        // Shard histogram data merged under the same (service, op) keys.
        assert!(audit(&merged).is_clean());
    }

    #[test]
    fn render_op_stats_tabulates() {
        let txt = render_op_stats(&[OpStat {
            service: "fs".into(),
            op: "open".into(),
            count: 3,
            p50: Ticks::micros(100),
            p95: Ticks::micros(900),
            max: Ticks::micros(1234),
        }]);
        assert!(txt.contains("service"));
        assert!(txt.contains("open"));
        assert!(txt.contains('3'));
    }
}
