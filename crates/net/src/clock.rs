//! The virtual clock all simulated costs are charged to.

use locus_types::Ticks;

/// A monotonically advancing virtual clock.
///
/// The simulation is single-threaded; each message transmission, disk
/// transfer or kernel CPU burst advances the clock by its modelled cost,
/// so elapsed virtual time of an operation is `now() - start`.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Ticks,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Advances the clock by `span`.
    pub fn advance(&mut self, span: Ticks) {
        self.now += span;
    }

    /// Sets the clock to `now` at an epoch barrier. The parallel engine
    /// lets shards advance private clocks from a common epoch start and
    /// re-bases the global clock to the merged end time; the merge rule
    /// only ever moves the clock forward, which this asserts.
    pub fn set(&mut self, now: Ticks) {
        assert!(now >= self.now, "epoch merge tried to move the clock backwards");
        self.now = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), Ticks::ZERO);
        c.advance(Ticks::micros(5));
        c.advance(Ticks::micros(7));
        assert_eq!(c.now(), Ticks::micros(12));
    }
}
