//! The virtual clock all simulated costs are charged to.

use locus_types::Ticks;

/// A monotonically advancing virtual clock.
///
/// The simulation is single-threaded; each message transmission, disk
/// transfer or kernel CPU burst advances the clock by its modelled cost,
/// so elapsed virtual time of an operation is `now() - start`.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Ticks,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Advances the clock by `span`.
    pub fn advance(&mut self, span: Ticks) {
        self.now += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), Ticks::ZERO);
        c.advance(Ticks::micros(5));
        c.advance(Ticks::micros(7));
        assert_eq!(c.now(), Ticks::micros(12));
    }
}
