//! Per-message-kind network statistics.
//!
//! Message counts are the unit the paper's protocol descriptions are
//! written in ("The protocol for a network read is thus: US -> SS … SS ->
//! US", §2.3.3); the experiment harnesses regenerate those counts from
//! these counters.

use std::collections::BTreeMap;

use locus_types::SiteId;

/// One row of the per-directed-link accounting table.
///
/// The per-service and per-kind tables aggregate both directions of a
/// link, which is exactly wrong for *gray* faults: a one-directional
/// slow link or block hits `A -> B` while `B -> A` stays clean. These
/// counters are keyed by ordered `(from, to)` so the health monitor and
/// the chaos suites can attribute a gray fault to the direction that
/// actually suffered it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Successful sends in this direction.
    pub sends: u64,
    /// Bytes carried by those sends.
    pub bytes: u64,
    /// Injected drops of messages in this direction.
    pub drops: u64,
    /// Failed sends (unreachable destination or circuit abort).
    pub fails: u64,
    /// Sends whose latency was inflated by a gray slow link.
    pub slowed: u64,
    /// Sends silently lost to a gray one-directional block.
    pub blocked: u64,
}

/// One row of the per-service wire-accounting table: every message the
/// [`crate::rpc::RpcEngine`] moves is tagged with its originating service
/// (`"fs"`, `"proc"`, `"topology"`, `"recovery"`), so each subsystem's
/// share of the wire is directly reportable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Successful request and reply sends attributed to the service.
    pub sends: u64,
    /// Bytes carried by those sends.
    pub bytes: u64,
    /// Engine-level retries (resent requests and re-issued RPCs).
    pub retries: u64,
    /// Injected drops of the service's messages.
    pub drops: u64,
    /// One-way notifications abandoned after retry exhaustion.
    pub losses: u64,
}

/// Counters of sends, bytes and failures, keyed by message kind label.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    sends: BTreeMap<&'static str, u64>,
    bytes: BTreeMap<&'static str, u64>,
    fails: BTreeMap<&'static str, u64>,
    drops: BTreeMap<&'static str, u64>,
    dups: BTreeMap<&'static str, u64>,
    delays: BTreeMap<&'static str, u64>,
    retries: BTreeMap<&'static str, u64>,
    losses: BTreeMap<&'static str, u64>,
    services: BTreeMap<&'static str, ServiceStats>,
    links: BTreeMap<(SiteId, SiteId), LinkStats>,
    site_busy: BTreeMap<SiteId, u64>,
    gauges: BTreeMap<String, u64>,
    /// Circuits closed by partition changes or crashes.
    pub circuits_closed: u64,
}

impl NetStats {
    /// Empty statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records a successful send.
    pub fn record(&mut self, kind: &'static str, bytes: usize) {
        *self.sends.entry(kind).or_insert(0) += 1;
        *self.bytes.entry(kind).or_insert(0) += bytes as u64;
    }

    /// Records a failed send (unreachable destination).
    pub fn record_failure(&mut self, kind: &'static str) {
        *self.fails.entry(kind).or_insert(0) += 1;
    }

    /// Records a message lost to injected fault (drop).
    pub fn record_drop(&mut self, kind: &'static str) {
        *self.drops.entry(kind).or_insert(0) += 1;
    }

    /// Records an injected wire-level duplicate delivery.
    pub fn record_duplicate(&mut self, kind: &'static str) {
        *self.dups.entry(kind).or_insert(0) += 1;
    }

    /// Records an injected delivery delay.
    pub fn record_delay(&mut self, kind: &'static str) {
        *self.delays.entry(kind).or_insert(0) += 1;
    }

    /// Records one retry attempt (a resend provoked by a fault).
    pub fn record_retry(&mut self, kind: &'static str) {
        *self.retries.entry(kind).or_insert(0) += 1;
    }

    /// Records a one-way notification abandoned after retry exhaustion
    /// (the loss partition recovery later reconciles), attributed to its
    /// originating service.
    pub fn record_one_way_loss(&mut self, service: &'static str, kind: &'static str) {
        *self.losses.entry(kind).or_insert(0) += 1;
        self.services.entry(service).or_default().losses += 1;
    }

    /// Attributes a successful send to a service.
    pub fn record_service_send(&mut self, service: &'static str, bytes: usize) {
        let row = self.services.entry(service).or_default();
        row.sends += 1;
        row.bytes += bytes as u64;
    }

    /// Attributes an injected drop to a service.
    pub fn record_service_drop(&mut self, service: &'static str) {
        self.services.entry(service).or_default().drops += 1;
    }

    /// Attributes a retry to a service.
    pub fn record_service_retry(&mut self, service: &'static str) {
        self.services.entry(service).or_default().retries += 1;
    }

    /// Records a successful send on the directed link `from -> to`.
    pub fn record_link_send(&mut self, from: SiteId, to: SiteId, bytes: usize) {
        let row = self.links.entry((from, to)).or_default();
        row.sends += 1;
        row.bytes += bytes as u64;
    }

    /// Records an injected drop on the directed link.
    pub fn record_link_drop(&mut self, from: SiteId, to: SiteId) {
        self.links.entry((from, to)).or_default().drops += 1;
    }

    /// Records a failed send (unreachable or circuit abort) on the
    /// directed link.
    pub fn record_link_fail(&mut self, from: SiteId, to: SiteId) {
        self.links.entry((from, to)).or_default().fails += 1;
    }

    /// Records a gray slow-link latency inflation on the directed link.
    pub fn record_link_slowed(&mut self, from: SiteId, to: SiteId) {
        self.links.entry((from, to)).or_default().slowed += 1;
    }

    /// Records a gray one-directional block on the directed link.
    pub fn record_link_blocked(&mut self, from: SiteId, to: SiteId) {
        self.links.entry((from, to)).or_default().blocked += 1;
    }

    /// Attributes `micros` of virtual CPU time to `site`. The simulation
    /// runs every site against one global virtual clock, so wall-style
    /// elapsed time cannot distinguish a balanced cluster from one whose
    /// whole load funnels through a single synchronization site; this
    /// table records where the cycles were actually spent.
    pub fn record_busy(&mut self, site: SiteId, micros: u64) {
        *self.site_busy.entry(site).or_insert(0) += micros;
    }

    /// Virtual CPU micros attributed to `site` (zero if it never worked).
    pub fn busy_micros(&self, site: SiteId) -> u64 {
        self.site_busy.get(&site).copied().unwrap_or(0)
    }

    /// The largest per-site busy time — the bottleneck site's load, which
    /// bounds the cluster's aggregate throughput under an open loop.
    pub fn max_busy_micros(&self) -> u64 {
        self.site_busy.values().copied().max().unwrap_or(0)
    }

    /// Iterates the per-site busy table in site order.
    pub fn site_busy(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.site_busy.iter().map(|(&s, &us)| (s, us))
    }

    /// Sets a named gauge (last-write-wins instantaneous value, e.g. a
    /// CSS request-queue depth sampled by the placement driver).
    pub fn set_gauge(&mut self, key: &str, value: u64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// The current value of a named gauge (zero if never set).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Iterates the gauge table sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Successful sends of `kind`.
    pub fn sends(&self, kind: &str) -> u64 {
        self.sends.get(kind).copied().unwrap_or(0)
    }

    /// Failed sends of `kind`.
    pub fn failures(&self, kind: &str) -> u64 {
        self.fails.get(kind).copied().unwrap_or(0)
    }

    /// Bytes carried by successful sends of `kind`.
    pub fn bytes(&self, kind: &str) -> u64 {
        self.bytes.get(kind).copied().unwrap_or(0)
    }

    /// Injected drops of `kind`.
    pub fn drops(&self, kind: &str) -> u64 {
        self.drops.get(kind).copied().unwrap_or(0)
    }

    /// Retries of `kind`.
    pub fn retries(&self, kind: &str) -> u64 {
        self.retries.get(kind).copied().unwrap_or(0)
    }

    /// Abandoned one-way sends of `kind`.
    pub fn one_way_losses(&self, kind: &str) -> u64 {
        self.losses.get(kind).copied().unwrap_or(0)
    }

    /// Total abandoned one-way sends across all kinds.
    pub fn total_one_way_losses(&self) -> u64 {
        self.losses.values().sum()
    }

    /// The accounting row of one service (zeros if it never sent).
    pub fn service(&self, service: &str) -> ServiceStats {
        self.services.get(service).copied().unwrap_or_default()
    }

    /// Iterates the per-service table sorted by service name.
    pub fn services(&self) -> impl Iterator<Item = (&'static str, ServiceStats)> + '_ {
        self.services.iter().map(|(&s, &row)| (s, row))
    }

    /// The accounting row of one directed link (zeros if never used).
    pub fn link(&self, from: SiteId, to: SiteId) -> LinkStats {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterates the per-directed-link table in key order.
    pub fn links(&self) -> impl Iterator<Item = ((SiteId, SiteId), LinkStats)> + '_ {
        self.links.iter().map(|(&k, &row)| (k, row))
    }

    /// Total injected drops across all kinds.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Total injected duplicates across all kinds.
    pub fn total_duplicates(&self) -> u64 {
        self.dups.values().sum()
    }

    /// Total injected delays across all kinds.
    pub fn total_delays(&self) -> u64 {
        self.delays.values().sum()
    }

    /// Total retries across all kinds.
    pub fn total_retries(&self) -> u64 {
        self.retries.values().sum()
    }

    /// Total successful sends across all kinds.
    pub fn total_sends(&self) -> u64 {
        self.sends.values().sum()
    }

    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Iterates `(kind, sends, bytes)` sorted by kind.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.sends
            .iter()
            .map(|(&k, &n)| (k, n, self.bytes.get(k).copied().unwrap_or(0)))
    }

    /// Message-count difference against an earlier snapshot; used to count
    /// messages of a single operation.
    pub fn delta_sends(&self, earlier: &NetStats) -> BTreeMap<&'static str, u64> {
        Self::diff(&self.sends, &earlier.sends)
    }

    /// Injected-drop difference against an earlier snapshot. Run *totals*
    /// misattribute faults suffered by setup traffic; a per-operation
    /// figure must be a delta between snapshots bracketing the operation.
    pub fn delta_drops(&self, earlier: &NetStats) -> BTreeMap<&'static str, u64> {
        Self::diff(&self.drops, &earlier.drops)
    }

    /// Retry difference against an earlier snapshot (see
    /// [`NetStats::delta_drops`]).
    pub fn delta_retries(&self, earlier: &NetStats) -> BTreeMap<&'static str, u64> {
        Self::diff(&self.retries, &earlier.retries)
    }

    /// Sum of one delta table's counts across all kinds.
    pub fn delta_total(delta: &BTreeMap<&'static str, u64>) -> u64 {
        delta.values().sum()
    }

    /// Folds a shard's counters into this table at an epoch barrier.
    /// Every table is additive; gauges are last-write-wins (shards touch
    /// disjoint gauge keys, and epoch ops set none today).
    pub fn merge_from(&mut self, other: NetStats) {
        fn add<K: Ord>(into: &mut BTreeMap<K, u64>, from: BTreeMap<K, u64>) {
            for (k, v) in from {
                *into.entry(k).or_insert(0) += v;
            }
        }
        add(&mut self.sends, other.sends);
        add(&mut self.bytes, other.bytes);
        add(&mut self.fails, other.fails);
        add(&mut self.drops, other.drops);
        add(&mut self.dups, other.dups);
        add(&mut self.delays, other.delays);
        add(&mut self.retries, other.retries);
        add(&mut self.losses, other.losses);
        add(&mut self.site_busy, other.site_busy);
        for (k, row) in other.services {
            let into = self.services.entry(k).or_default();
            into.sends += row.sends;
            into.bytes += row.bytes;
            into.retries += row.retries;
            into.drops += row.drops;
            into.losses += row.losses;
        }
        for (k, row) in other.links {
            let into = self.links.entry(k).or_default();
            into.sends += row.sends;
            into.bytes += row.bytes;
            into.drops += row.drops;
            into.fails += row.fails;
            into.slowed += row.slowed;
            into.blocked += row.blocked;
        }
        self.gauges.extend(other.gauges);
        self.circuits_closed += other.circuits_closed;
    }

    /// Per-directed-link drop difference against an earlier snapshot
    /// (see [`NetStats::delta_drops`] for why deltas, not totals).
    pub fn delta_link_drops(&self, earlier: &NetStats) -> BTreeMap<(SiteId, SiteId), u64> {
        Self::diff_links(&self.links, &earlier.links, |l| l.drops)
    }

    /// Per-directed-link slow-inflation difference against an earlier
    /// snapshot.
    pub fn delta_link_slowed(&self, earlier: &NetStats) -> BTreeMap<(SiteId, SiteId), u64> {
        Self::diff_links(&self.links, &earlier.links, |l| l.slowed)
    }

    /// Per-directed-link block difference against an earlier snapshot.
    pub fn delta_link_blocked(&self, earlier: &NetStats) -> BTreeMap<(SiteId, SiteId), u64> {
        Self::diff_links(&self.links, &earlier.links, |l| l.blocked)
    }

    fn diff_links(
        now: &BTreeMap<(SiteId, SiteId), LinkStats>,
        earlier: &BTreeMap<(SiteId, SiteId), LinkStats>,
        field: impl Fn(&LinkStats) -> u64,
    ) -> BTreeMap<(SiteId, SiteId), u64> {
        let mut out = BTreeMap::new();
        for (&k, row) in now {
            let d = field(row) - earlier.get(&k).map(&field).unwrap_or(0);
            if d > 0 {
                out.insert(k, d);
            }
        }
        out
    }

    fn diff(
        now: &BTreeMap<&'static str, u64>,
        earlier: &BTreeMap<&'static str, u64>,
    ) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for (&k, &n) in now {
            let d = n - earlier.get(k).copied().unwrap_or(0);
            if d > 0 {
                out.insert(k, d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums() {
        let mut s = NetStats::new();
        s.record("READ req", 32);
        s.record("READ req", 32);
        s.record("READ resp", 4096);
        s.record_failure("OPEN req");
        assert_eq!(s.sends("READ req"), 2);
        assert_eq!(s.bytes("READ resp"), 4096);
        assert_eq!(s.failures("OPEN req"), 1);
        assert_eq!(s.total_sends(), 3);
        assert_eq!(s.total_bytes(), 4160);
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut s = NetStats::new();
        s.record_drop("OPEN req");
        s.record_drop("OPEN req");
        s.record_duplicate("READ resp");
        s.record_delay("SS poll");
        s.record_retry("OPEN req");
        assert_eq!(s.drops("OPEN req"), 2);
        assert_eq!(s.total_drops(), 2);
        assert_eq!(s.total_duplicates(), 1);
        assert_eq!(s.total_delays(), 1);
        assert_eq!(s.retries("OPEN req"), 1);
        assert_eq!(s.total_retries(), 1);
    }

    #[test]
    fn service_table_accumulates_per_service() {
        let mut s = NetStats::new();
        s.record_service_send("fs", 64);
        s.record_service_send("fs", 1024);
        s.record_service_retry("fs");
        s.record_service_send("proc", 96);
        s.record_service_drop("proc");
        s.record_one_way_loss("proc", "EXIT notify");
        assert_eq!(s.service("fs").sends, 2);
        assert_eq!(s.service("fs").bytes, 1088);
        assert_eq!(s.service("fs").retries, 1);
        assert_eq!(s.service("proc").drops, 1);
        assert_eq!(s.service("proc").losses, 1);
        assert_eq!(s.service("topology"), ServiceStats::default());
        assert_eq!(s.one_way_losses("EXIT notify"), 1);
        assert_eq!(s.total_one_way_losses(), 1);
        let names: Vec<&str> = s.services().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["fs", "proc"]);
    }

    #[test]
    fn delta_isolates_one_operation() {
        let mut s = NetStats::new();
        s.record("OPEN req", 64);
        let snap = s.clone();
        s.record("OPEN req", 64);
        s.record("OPEN resp", 128);
        let d = s.delta_sends(&snap);
        assert_eq!(d.get("OPEN req"), Some(&1));
        assert_eq!(d.get("OPEN resp"), Some(&1));
        assert_eq!(d.len(), 2);
    }

    /// Regression: gray faults are one-directional, and the per-service
    /// and per-kind tables aggregate both directions of a link. The
    /// directed-link table must keep `A -> B` separate from `B -> A`.
    #[test]
    fn link_table_attributes_directions_separately() {
        let mut s = NetStats::new();
        let (a, b) = (SiteId(0), SiteId(1));
        s.record_link_send(a, b, 64);
        s.record_link_send(b, a, 32);
        s.record_link_drop(a, b);
        s.record_link_blocked(a, b);
        s.record_link_slowed(b, a);
        s.record_link_fail(b, a);
        assert_eq!(s.link(a, b).sends, 1);
        assert_eq!(s.link(a, b).bytes, 64);
        assert_eq!(s.link(a, b).drops, 1);
        assert_eq!(s.link(a, b).blocked, 1);
        assert_eq!(s.link(a, b).slowed, 0, "the slow fault hit b -> a");
        assert_eq!(s.link(b, a).slowed, 1);
        assert_eq!(s.link(b, a).fails, 1);
        assert_eq!(s.link(b, a).drops, 0, "the drop hit a -> b");
        assert_eq!(s.link(SiteId(2), a), LinkStats::default());
        assert_eq!(s.links().count(), 2);
    }

    #[test]
    fn link_deltas_exclude_earlier_faults() {
        let mut s = NetStats::new();
        let (a, b) = (SiteId(0), SiteId(1));
        s.record_link_drop(a, b);
        s.record_link_slowed(a, b);
        let snap = s.clone();
        s.record_link_drop(a, b);
        s.record_link_slowed(b, a);
        s.record_link_blocked(b, a);
        let drops = s.delta_link_drops(&snap);
        assert_eq!(drops.get(&(a, b)), Some(&1), "only the new drop");
        let slowed = s.delta_link_slowed(&snap);
        assert_eq!(slowed.get(&(a, b)), None, "setup inflation excluded");
        assert_eq!(slowed.get(&(b, a)), Some(&1));
        assert_eq!(s.delta_link_blocked(&snap).get(&(b, a)), Some(&1));
    }

    /// The busy table keys by site so a sweep can find the bottleneck
    /// site; gauges are last-write-wins instantaneous values.
    #[test]
    fn busy_table_and_gauges() {
        let mut s = NetStats::new();
        s.record_busy(SiteId(0), 200);
        s.record_busy(SiteId(0), 400);
        s.record_busy(SiteId(3), 200);
        assert_eq!(s.busy_micros(SiteId(0)), 600);
        assert_eq!(s.busy_micros(SiteId(3)), 200);
        assert_eq!(s.busy_micros(SiteId(7)), 0);
        assert_eq!(s.max_busy_micros(), 600);
        let rows: Vec<(SiteId, u64)> = s.site_busy().collect();
        assert_eq!(rows, vec![(SiteId(0), 600), (SiteId(3), 200)]);
        s.set_gauge("css.depth.fg1", 5);
        s.set_gauge("css.depth.fg1", 2);
        assert_eq!(s.gauge("css.depth.fg1"), 2, "gauges overwrite");
        assert_eq!(s.gauge("css.depth.fg2"), 0);
        let gauges: Vec<(&str, u64)> = s.gauges().collect();
        assert_eq!(gauges, vec![("css.depth.fg1", 2)]);
    }

    /// Regression: per-operation drop/retry figures used to be computed
    /// from run totals, silently absorbing faults suffered by setup
    /// traffic before the measured operation began.
    #[test]
    fn drop_and_retry_deltas_exclude_earlier_faults() {
        let mut s = NetStats::new();
        // Setup traffic suffers faults too.
        s.record_drop("OPEN req");
        s.record_retry("OPEN req");
        let snap = s.clone();
        // The measured operation.
        s.record_drop("PTN poll");
        s.record_drop("PTN poll");
        s.record_retry("PTN poll");
        let drops = s.delta_drops(&snap);
        let retries = s.delta_retries(&snap);
        assert_eq!(drops.get("PTN poll"), Some(&2));
        assert_eq!(drops.get("OPEN req"), None, "setup drops excluded");
        assert_eq!(retries.get("PTN poll"), Some(&1));
        assert_eq!(NetStats::delta_total(&drops), 2);
        assert_eq!(NetStats::delta_total(&retries), 1);
        assert!(
            s.total_drops() > NetStats::delta_total(&drops),
            "the totals really do overcount the operation"
        );
    }
}
