//! The simulation-engine abstraction: sequential vs. parallel-epoch
//! execution over the shared virtual clock.
//!
//! Both engines produce **byte-identical** traces, histograms and
//! statistics for the same workload; the parallel engine only changes
//! how wall-clock time is spent. The contract:
//!
//! * **Epochs.** The cluster runs in virtual-time epochs. Within an
//!   epoch, disjoint site groups (computed from operation footprints)
//!   execute concurrently, each on a private shard of the network state
//!   forked by [`crate::Net::fork_shard`] — per-site kernels, circuits,
//!   health rows and fault-RNG streams move into the shard, so shard
//!   execution is ordinary single-threaded simulation.
//! * **Barrier merge.** At the epoch barrier the shards are absorbed
//!   back ([`crate::Net::absorb_shards`]): per-operation event segments
//!   are re-based onto the global clock in submission order, and
//!   cross-site messages produced during the epoch are buffered per
//!   (source, destination) and delivered in the *next* epoch in the
//!   total order defined by [`PostStamp`] — (virtual time, source site,
//!   per-source sequence number).
//! * **Determinism.** Shard execution is duration-pure (nothing a shard
//!   does depends on the absolute clock value, only on elapsed spans),
//!   per-site RNG streams are independent of interleaving
//!   ([`crate::fault::site_stream_seed`]), and the merge order is a
//!   function of the stamps alone — so the parallel engine replays the
//!   sequential engine's byte stream exactly.

use locus_types::{SiteId, Ticks};

/// Which simulation engine drives a cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// One thread, operations executed inline in submission order (the
    /// original engine).
    #[default]
    Sequential,
    /// Site-sharded run queues: disjoint site groups execute one
    /// virtual-time epoch concurrently and merge deterministically at
    /// the epoch barrier.
    ParallelEpoch,
}

impl EngineKind {
    /// Stable display name (used by settle diagnostics and benches).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::ParallelEpoch => "parallel",
        }
    }

    /// Parses an engine name as accepted by the `LOCUS_ENGINE`
    /// environment variable.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Some(EngineKind::Sequential),
            "parallel" | "parallel-epoch" | "par" => Some(EngineKind::ParallelEpoch),
            _ => None,
        }
    }
}

impl core::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The engine selected by the `LOCUS_ENGINE` environment variable, if
/// set and well-formed. Builders consult this as the default, so CI can
/// run whole suites under the parallel engine without code changes; an
/// explicit `engine(...)` builder call always wins.
pub fn engine_from_env() -> Option<EngineKind> {
    std::env::var("LOCUS_ENGINE").ok().and_then(|v| EngineKind::parse(&v))
}

/// The delivery stamp of one cross-epoch message: messages buffered on
/// the site-sharded run queues during epoch *t* are delivered in epoch
/// *t + 1* sorted by this stamp — virtual post time first, then source
/// site, then the source's sequence number. The derived lexicographic
/// [`Ord`] *is* the engine's documented merge rule (audited offline as
/// trace invariant 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PostStamp {
    /// Virtual time at which the message was posted.
    pub at: Ticks,
    /// Posting (source) site.
    pub from: SiteId,
    /// Position in the source site's post sequence.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_engines_and_rejects_noise() {
        assert_eq!(EngineKind::parse("sequential"), Some(EngineKind::Sequential));
        assert_eq!(EngineKind::parse("Parallel"), Some(EngineKind::ParallelEpoch));
        assert_eq!(EngineKind::parse(" parallel-epoch "), Some(EngineKind::ParallelEpoch));
        assert_eq!(EngineKind::parse("turbo"), None);
        assert_eq!(EngineKind::parse(""), None);
    }

    #[test]
    fn post_stamps_order_by_time_then_site_then_seq() {
        let s = |us, site, seq| PostStamp {
            at: Ticks::micros(us),
            from: SiteId(site),
            seq,
        };
        let mut v = vec![s(5, 0, 1), s(3, 2, 0), s(3, 1, 7), s(3, 1, 2)];
        v.sort();
        assert_eq!(v, vec![s(3, 1, 2), s(3, 1, 7), s(3, 2, 0), s(5, 0, 1)]);
    }
}
