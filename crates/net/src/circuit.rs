//! Virtual circuits.
//!
//! §5.1: "Network information is kept internally in both a high-level
//! status table and a collection of virtual circuits. … Failure of a
//! virtual circuit, either on or after open, does, however, remove a node
//! from a partition. Likewise removal from a partition closes all relevant
//! virtual circuits." Circuits here carry no payload (delivery is modelled
//! by [`crate::Net::send`]); they track which site pairs have an open
//! conversation so that partition changes can abort in-flight activity and
//! the reconfiguration protocol can observe circuit failures.

use std::collections::BTreeSet;

use locus_types::SiteId;

/// The set of open virtual circuits, keyed by unordered site pair.
#[derive(Debug, Default)]
pub struct CircuitTable {
    open: BTreeSet<(SiteId, SiteId)>,
    /// Pairs whose circuit failed mid-conversation (e.g. a lost reply);
    /// the next send between such a pair is refused with `CircuitClosed`
    /// so the ongoing activity observes the abort (§5.1).
    aborted: BTreeSet<(SiteId, SiteId)>,
}

fn key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl CircuitTable {
    /// An empty table.
    pub fn new() -> Self {
        CircuitTable::default()
    }

    /// Opens the circuit between `a` and `b` if not already open.
    pub fn ensure_open(&mut self, a: SiteId, b: SiteId) {
        self.open.insert(key(a, b));
    }

    /// Whether a circuit between the pair is open.
    pub fn is_open(&self, a: SiteId, b: SiteId) -> bool {
        self.open.contains(&key(a, b))
    }

    /// Closes the circuit between the pair (idempotent).
    pub fn close_pair(&mut self, a: SiteId, b: SiteId) {
        self.open.remove(&key(a, b));
    }

    /// Closes the circuit between the pair *mid-conversation*: the pair is
    /// additionally marked aborted, so the next send attempt between them
    /// observes `CircuitClosed` before a fresh circuit can open.
    pub fn abort_pair(&mut self, a: SiteId, b: SiteId) {
        self.open.remove(&key(a, b));
        self.aborted.insert(key(a, b));
    }

    /// Consumes the pair's abort mark, returning whether one was set.
    pub fn take_abort(&mut self, a: SiteId, b: SiteId) -> bool {
        self.aborted.remove(&key(a, b))
    }

    /// Closes every circuit involving `site`; returns how many closed.
    pub fn close_involving(&mut self, site: SiteId) -> u64 {
        let before = self.open.len();
        self.open.retain(|&(a, b)| a != site && b != site);
        (before - self.open.len()) as u64
    }

    /// Visits every open circuit.
    pub fn for_each_open(&self, mut f: impl FnMut(SiteId, SiteId)) {
        for &(a, b) in &self.open {
            f(a, b);
        }
    }

    /// Number of open circuits.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Splits off the circuits fully inside a site-shard: pairs with both
    /// endpoints in `sites` (open and abort marks alike) move to the
    /// returned table. A shard only ever touches pairs inside its
    /// footprint, so pairs straddling the boundary stay with the parent.
    pub fn split_sites(&mut self, sites: &BTreeSet<SiteId>) -> CircuitTable {
        let inside = |&(a, b): &(SiteId, SiteId)| sites.contains(&a) && sites.contains(&b);
        let open: BTreeSet<_> = self.open.iter().copied().filter(inside).collect();
        let aborted: BTreeSet<_> = self.aborted.iter().copied().filter(inside).collect();
        self.open.retain(|p| !inside(p));
        self.aborted.retain(|p| !inside(p));
        CircuitTable { open, aborted }
    }

    /// Re-absorbs a shard's circuits after an epoch barrier.
    pub fn absorb(&mut self, shard: CircuitTable) {
        self.open.extend(shard.open);
        self.aborted.extend(shard.aborted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_is_unordered_and_idempotent() {
        let mut t = CircuitTable::new();
        t.ensure_open(SiteId(1), SiteId(2));
        t.ensure_open(SiteId(2), SiteId(1));
        assert_eq!(t.open_count(), 1);
        assert!(t.is_open(SiteId(2), SiteId(1)));
    }

    #[test]
    fn close_involving_counts() {
        let mut t = CircuitTable::new();
        t.ensure_open(SiteId(0), SiteId(1));
        t.ensure_open(SiteId(0), SiteId(2));
        t.ensure_open(SiteId(1), SiteId(2));
        assert_eq!(t.close_involving(SiteId(0)), 2);
        assert_eq!(t.open_count(), 1);
        assert!(t.is_open(SiteId(1), SiteId(2)));
    }

    #[test]
    fn abort_marks_are_consumed_once() {
        let mut t = CircuitTable::new();
        t.ensure_open(SiteId(0), SiteId(1));
        t.abort_pair(SiteId(1), SiteId(0));
        assert!(!t.is_open(SiteId(0), SiteId(1)));
        assert!(t.take_abort(SiteId(0), SiteId(1)));
        assert!(!t.take_abort(SiteId(0), SiteId(1)), "mark consumed");
    }

    #[test]
    fn close_pair_is_idempotent() {
        let mut t = CircuitTable::new();
        t.ensure_open(SiteId(0), SiteId(1));
        t.close_pair(SiteId(1), SiteId(0));
        t.close_pair(SiteId(0), SiteId(1));
        assert_eq!(t.open_count(), 0);
    }
}
