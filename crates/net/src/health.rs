//! Gray-failure health monitoring: detect → isolate → recover.
//!
//! Partition detection (§5.4) answers a binary question — can two sites
//! talk at all? A *gray* site answers it wrongly: its links are up but
//! slow, lossy in one direction, or flapping, so every poll succeeds
//! (eventually) while real work degrades. Following the DIR Net's
//! fault-treatment pipeline, this module scores per-site health from the
//! signals the send path already produces — drops, circuit
//! aborts/reopens, and latency drift against a per-directed-link running
//! average — and drives a three-stage state machine:
//!
//! * **detect** — penalties accumulate per blamed site; crossing the
//!   suspect threshold marks it [`SiteHealth::Suspect`], crossing the
//!   quarantine threshold [`SiteHealth::Quarantined`];
//! * **isolate** — a quarantined site stays reachable (this is not a
//!   partition) but higher layers exclude it from CSS eligibility and
//!   replica reads via [`crate::Net::quarantined`];
//! * **recover** — an explicit probation ([`HealthMonitor::begin_probation`])
//!   readmits the site only after a run of consecutive successful probes;
//!   any failure during probation re-quarantines it.
//!
//! The monitor is **passive and free**: it consumes no RNG rolls, never
//! advances the clock, and sends nothing, so enabling it with no faults
//! injected leaves every trace and statistic byte-identical
//! ("observability must stay free"). It is disabled by default;
//! [`crate::Net::enable_health`] turns it on.

use std::collections::BTreeMap;

use locus_types::{SiteId, Ticks};

/// Where a site stands in the detect → isolate → recover pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SiteHealth {
    /// No evidence of gray behaviour.
    #[default]
    Healthy,
    /// Penalties are accumulating but below the quarantine threshold.
    Suspect,
    /// Enough evidence to isolate: excluded from CSS eligibility and
    /// replica reads until probation succeeds.
    Quarantined,
    /// Under readmission probes; still isolated.
    Probation,
}

/// Tuning knobs for the health monitor's scoring and thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Score at which a site becomes [`SiteHealth::Suspect`].
    pub suspect_score: u32,
    /// Score at which a site is quarantined.
    pub quarantine_score: u32,
    /// Penalty per hard fault signal (drop, circuit abort, reopen).
    pub fault_penalty: u32,
    /// Penalty per latency-drift signal.
    pub slow_penalty: u32,
    /// Score forgiven per clean delivery.
    pub success_reward: u32,
    /// A delivery is "drifted" when its cost exceeds `drift_factor`
    /// times the link's running average.
    pub drift_factor: u32,
    /// Minimum samples on a link before drift detection engages.
    pub drift_min_samples: u64,
    /// Consecutive successful probes required to readmit from probation.
    pub probation_probes: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_score: 8,
            quarantine_score: 16,
            fault_penalty: 4,
            slow_penalty: 2,
            success_reward: 1,
            drift_factor: 4,
            drift_min_samples: 8,
            probation_probes: 3,
        }
    }
}

/// A state transition worth surfacing (the [`crate::Net`] turns these
/// into `health.quarantine` / `health.readmit` observability notes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// The site crossed the quarantine threshold at the given score.
    Quarantined(SiteId, u32),
    /// Probation completed; the site is healthy again.
    Readmitted(SiteId),
}

/// Running latency average of one directed link (integer EWMA, α = ⅛).
#[derive(Clone, Copy, Debug, Default)]
struct LinkHealth {
    ewma_us: u64,
    samples: u64,
}

/// Per-site health accounting fed by the send path.
#[derive(Clone, Debug, Default)]
pub struct HealthMonitor {
    enabled: bool,
    policy: HealthPolicy,
    scores: BTreeMap<SiteId, u32>,
    states: BTreeMap<SiteId, SiteHealth>,
    links: BTreeMap<(SiteId, SiteId), LinkHealth>,
    /// Consecutive successful probes per site in probation.
    probes: BTreeMap<SiteId, u32>,
}

impl HealthMonitor {
    /// A disabled monitor with the default policy.
    pub fn new() -> Self {
        HealthMonitor::default()
    }

    /// Enables the monitor under `policy` (resetting all accounting).
    pub fn enable(&mut self, policy: HealthPolicy) {
        *self = HealthMonitor {
            enabled: true,
            policy,
            ..HealthMonitor::default()
        };
    }

    /// Whether the monitor is scoring.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Splits off the accounting of a site-shard: per-site scores, states
    /// and probe runs of the member sites, plus the EWMA rows of directed
    /// links with both endpoints inside. The monitor is duration-pure (it
    /// never reads the absolute clock or an RNG), so shard-local scoring
    /// merges back exactly.
    pub fn split_sites(&mut self, sites: &std::collections::BTreeSet<SiteId>) -> HealthMonitor {
        let mut shard = HealthMonitor {
            enabled: self.enabled,
            policy: self.policy,
            ..HealthMonitor::default()
        };
        for &s in sites {
            if let Some(v) = self.scores.remove(&s) {
                shard.scores.insert(s, v);
            }
            if let Some(v) = self.states.remove(&s) {
                shard.states.insert(s, v);
            }
            if let Some(v) = self.probes.remove(&s) {
                shard.probes.insert(s, v);
            }
        }
        let inside = |&(a, b): &(SiteId, SiteId)| sites.contains(&a) && sites.contains(&b);
        shard.links = self
            .links
            .iter()
            .filter(|(k, _)| inside(k))
            .map(|(&k, &v)| (k, v))
            .collect();
        self.links.retain(|k, _| !inside(k));
        shard
    }

    /// Re-absorbs a shard's accounting after an epoch barrier.
    pub fn absorb(&mut self, shard: HealthMonitor) {
        self.scores.extend(shard.scores);
        self.states.extend(shard.states);
        self.probes.extend(shard.probes);
        self.links.extend(shard.links);
    }

    /// The policy in force.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// The health state of one site.
    pub fn state(&self, site: SiteId) -> SiteHealth {
        self.states.get(&site).copied().unwrap_or_default()
    }

    /// The penalty score of one site.
    pub fn score(&self, site: SiteId) -> u32 {
        self.scores.get(&site).copied().unwrap_or(0)
    }

    /// Whether the site is isolated (quarantined or still in probation).
    pub fn quarantined(&self, site: SiteId) -> bool {
        matches!(
            self.state(site),
            SiteHealth::Quarantined | SiteHealth::Probation
        )
    }

    /// Snapshot of every site with non-default state or score.
    pub fn snapshot(&self) -> Vec<(SiteId, SiteHealth, u32)> {
        let mut sites: Vec<SiteId> = self.scores.keys().copied().collect();
        sites.extend(self.states.keys().copied());
        sites.sort_unstable();
        sites.dedup();
        sites
            .into_iter()
            .map(|s| (s, self.state(s), self.score(s)))
            .collect()
    }

    /// Feeds one clean delivery on `from -> to` that cost `cost`,
    /// crediting `blame` (the remote conversation partner). Returns a
    /// transition if probation completed.
    pub fn observe_success(
        &mut self,
        from: SiteId,
        to: SiteId,
        blame: SiteId,
        cost: Ticks,
    ) -> Option<HealthEvent> {
        if !self.enabled {
            return None;
        }
        let us = cost.as_micros();
        let link = self.links.entry((from, to)).or_default();
        let drifted = link.samples >= self.policy.drift_min_samples
            && us > link.ewma_us.saturating_mul(self.policy.drift_factor as u64);
        // Drifted samples are excluded from the running average: folding
        // them in would converge the baseline toward the gray latency and
        // silence the detector within a handful of deliveries.
        if !drifted {
            link.ewma_us = if link.samples == 0 {
                us
            } else {
                link.ewma_us - link.ewma_us / 8 + us / 8
            };
            link.samples += 1;
        }
        if drifted {
            return self.penalize(blame, self.policy.slow_penalty);
        }
        self.reward(blame)
    }

    /// Feeds one hard fault signal (drop, circuit abort, consecutive
    /// reopen) blamed on `blame`. Returns a transition if the site
    /// crossed into quarantine.
    pub fn observe_fault(&mut self, blame: SiteId) -> Option<HealthEvent> {
        if !self.enabled {
            return None;
        }
        self.penalize(blame, self.policy.fault_penalty)
    }

    /// Moves a quarantined site into probation; `false` if it was not
    /// quarantined.
    pub fn begin_probation(&mut self, site: SiteId) -> bool {
        if self.state(site) != SiteHealth::Quarantined {
            return false;
        }
        self.states.insert(site, SiteHealth::Probation);
        self.probes.insert(site, 0);
        true
    }

    fn penalize(&mut self, site: SiteId, penalty: u32) -> Option<HealthEvent> {
        let score = self.scores.entry(site).or_insert(0);
        *score = score.saturating_add(penalty);
        let score = *score;
        match self.state(site) {
            SiteHealth::Quarantined => None,
            SiteHealth::Probation => {
                // A fault during probation re-quarantines without a fresh
                // note: the site never left isolation.
                self.states.insert(site, SiteHealth::Quarantined);
                self.probes.remove(&site);
                None
            }
            _ if score >= self.policy.quarantine_score => {
                self.states.insert(site, SiteHealth::Quarantined);
                Some(HealthEvent::Quarantined(site, score))
            }
            _ if score >= self.policy.suspect_score => {
                self.states.insert(site, SiteHealth::Suspect);
                None
            }
            _ => None,
        }
    }

    fn reward(&mut self, site: SiteId) -> Option<HealthEvent> {
        let score = self.scores.entry(site).or_insert(0);
        *score = score.saturating_sub(self.policy.success_reward);
        let score = *score;
        match self.state(site) {
            SiteHealth::Probation => {
                let n = self.probes.entry(site).or_insert(0);
                *n += 1;
                if *n >= self.policy.probation_probes {
                    self.states.insert(site, SiteHealth::Healthy);
                    self.scores.insert(site, 0);
                    self.probes.remove(&site);
                    Some(HealthEvent::Readmitted(site))
                } else {
                    None
                }
            }
            SiteHealth::Suspect if score < self.policy.suspect_score => {
                self.states.insert(site, SiteHealth::Healthy);
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> HealthMonitor {
        let mut m = HealthMonitor::new();
        m.enable(HealthPolicy::default());
        m
    }

    #[test]
    fn disabled_monitor_scores_nothing() {
        let mut m = HealthMonitor::new();
        for _ in 0..100 {
            assert_eq!(m.observe_fault(SiteId(1)), None);
        }
        assert_eq!(m.state(SiteId(1)), SiteHealth::Healthy);
        assert_eq!(m.score(SiteId(1)), 0);
        assert!(!m.quarantined(SiteId(1)));
    }

    #[test]
    fn faults_walk_a_site_through_suspect_into_quarantine() {
        let mut m = enabled();
        let gray = SiteId(2);
        assert_eq!(m.observe_fault(gray), None);
        assert_eq!(m.observe_fault(gray), None);
        assert_eq!(m.state(gray), SiteHealth::Suspect, "8 points: suspect");
        assert_eq!(m.observe_fault(gray), None);
        assert_eq!(
            m.observe_fault(gray),
            Some(HealthEvent::Quarantined(gray, 16))
        );
        assert!(m.quarantined(gray));
        // Further faults do not re-announce.
        assert_eq!(m.observe_fault(gray), None);
    }

    #[test]
    fn successes_forgive_a_suspect() {
        let mut m = enabled();
        let s = SiteId(1);
        m.observe_fault(s);
        m.observe_fault(s);
        assert_eq!(m.state(s), SiteHealth::Suspect);
        for _ in 0..2 {
            m.observe_success(SiteId(0), s, s, Ticks::micros(100));
        }
        assert_eq!(m.state(s), SiteHealth::Healthy, "score decayed below 8");
    }

    #[test]
    fn latency_drift_penalizes_after_a_baseline_forms() {
        let mut m = enabled();
        let gray = SiteId(1);
        // Build a ~100 µs baseline on the link.
        for _ in 0..8 {
            m.observe_success(gray, SiteId(0), gray, Ticks::micros(100));
        }
        assert_eq!(m.score(gray), 0);
        // A 10x-inflated delivery is drift, not credit.
        m.observe_success(gray, SiteId(0), gray, Ticks::micros(1000));
        assert_eq!(m.score(gray), HealthPolicy::default().slow_penalty);
        // Enough drifted deliveries quarantine the site.
        let mut quarantined = false;
        for _ in 0..16 {
            if let Some(HealthEvent::Quarantined(s, _)) =
                m.observe_success(gray, SiteId(0), gray, Ticks::micros(1000))
            {
                assert_eq!(s, gray);
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "sustained drift isolates the site");
    }

    #[test]
    fn drift_detection_waits_for_samples() {
        let mut m = enabled();
        // The very first delivery is huge, but there is no baseline yet.
        m.observe_success(SiteId(0), SiteId(1), SiteId(1), Ticks::micros(50_000));
        assert_eq!(m.score(SiteId(1)), 0);
    }

    #[test]
    fn probation_readmits_after_consecutive_clean_probes() {
        let mut m = enabled();
        let gray = SiteId(3);
        for _ in 0..4 {
            m.observe_fault(gray);
        }
        assert!(m.quarantined(gray));
        assert!(!m.begin_probation(SiteId(0)), "healthy sites have no probation");
        assert!(m.begin_probation(gray));
        assert_eq!(m.state(gray), SiteHealth::Probation);
        assert!(m.quarantined(gray), "probation is still isolation");
        m.observe_success(SiteId(0), gray, gray, Ticks::micros(100));
        m.observe_success(SiteId(0), gray, gray, Ticks::micros(100));
        assert_eq!(m.state(gray), SiteHealth::Probation);
        assert_eq!(
            m.observe_success(SiteId(0), gray, gray, Ticks::micros(100)),
            Some(HealthEvent::Readmitted(gray))
        );
        assert_eq!(m.state(gray), SiteHealth::Healthy);
        assert_eq!(m.score(gray), 0, "readmission clears the record");
    }

    #[test]
    fn a_fault_during_probation_requarantines() {
        let mut m = enabled();
        let gray = SiteId(3);
        for _ in 0..4 {
            m.observe_fault(gray);
        }
        assert!(m.begin_probation(gray));
        m.observe_success(SiteId(0), gray, gray, Ticks::micros(100));
        assert_eq!(m.observe_fault(gray), None, "no fresh quarantine note");
        assert_eq!(m.state(gray), SiteHealth::Quarantined);
        // A fresh probation starts its probe count over.
        assert!(m.begin_probation(gray));
        m.observe_success(SiteId(0), gray, gray, Ticks::micros(100));
        assert_eq!(m.state(gray), SiteHealth::Probation, "count restarted");
    }

    #[test]
    fn snapshot_lists_scored_sites_in_order() {
        let mut m = enabled();
        m.observe_fault(SiteId(2));
        m.observe_fault(SiteId(0));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, SiteId(0));
        assert_eq!(snap[1].0, SiteId(2));
    }
}
