//! The subsystem-agnostic RPC engine.
//!
//! LOCUS has exactly *one* kernel-to-kernel message discipline: "the
//! operating system packages up a message and sends it to the relevant
//! foreign site. Typically the kernel then sleeps, waiting for a
//! response" (§2.3.2, Figure 1). Every subsystem — filesystem, process
//! management, reconfiguration, recovery — speaks it. This module is that
//! discipline extracted once: a [`WireMsg`] trait describing a protocol's
//! typed messages (kind labels, wire size, idempotency) and an
//! [`RpcEngine`] owning the send → serve → reply → loss-handling state
//! machine, so retry/backoff, the §5.1 circuit-abort rule and per-service
//! wire accounting are inherited rather than re-implemented per caller.
//!
//! Failure handling follows the filesystem protocol's rules, now shared:
//!
//! * a dropped **request** never reached the handler and is always safe
//!   to resend — each resend charges the [`RetryPolicy`] backoff to the
//!   virtual clock and counts as a retry;
//! * a dropped **reply** means the request was already served: the
//!   virtual circuit closes mid-conversation (§5.1) and the whole RPC is
//!   re-issued only if the message is [idempotent](WireMsg::idempotent);
//! * a `CircuitClosed` notice left by a previous lost reply is local
//!   knowledge, not a wire transmission — reopening spends no attempt,
//!   but consecutive reopenings are bounded by
//!   [`MAX_CONSECUTIVE_REOPENS`] so a flapping circuit cannot spin the
//!   sender forever.

use locus_types::SiteId;

use crate::{Net, NetError, RetryPolicy};

/// Default upper bound on *consecutive* `CircuitClosed` reopen-retries
/// within one engine call (the default for [`RetryPolicy::max_reopens`]).
/// Reopening spends no [`RetryPolicy`] attempt (the notice is local
/// knowledge, §5.1), so without a bound a circuit that fails on every
/// reopen — a flapping link — would spin the sender forever. The counter
/// resets whenever a send actually reaches the wire.
pub const MAX_CONSECUTIVE_REOPENS: u32 = 16;

/// A typed wire protocol message a subsystem hands to the [`RpcEngine`].
///
/// Implementations are cheap-to-clone enums (one variant per protocol
/// message); the engine clones the message once per delivery attempt so
/// re-issued RPCs serve the identical request.
pub trait WireMsg: Clone {
    /// The originating service, tagged onto every send for the
    /// per-service tables in [`crate::NetStats`] (e.g. `"fs"`, `"proc"`).
    const SERVICE: &'static str;

    /// The request's kind label in statistics and traces.
    fn kind(&self) -> &'static str;

    /// The kind label of the reply paired with this request.
    fn reply_kind(&self) -> &'static str;

    /// Approximate wire size of the request in bytes.
    fn wire_bytes(&self) -> usize;

    /// Whether the request may be *re-issued* after its reply was lost —
    /// i.e. the remote handler may already have run once. Queries and
    /// repetition-tolerant registrations qualify; exactly-once state
    /// transitions do not (their reply loss surfaces as an error for the
    /// §5.6 cleanup / recovery procedures to reconcile).
    fn idempotent(&self) -> bool;
}

/// Why an engine call gave up. Callers usually map every variant to one
/// "site down" error; the distinction exists for tests and diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// Destination crashed or in another partition (not transient).
    Unreachable,
    /// Transient request losses exhausted the [`RetryPolicy`] attempts.
    RetriesExhausted,
    /// The reply was lost and the request is not idempotent (or attempts
    /// ran out re-issuing it): the conversation is ambiguous (§5.1).
    ReplyLost,
    /// The circuit failed on [`MAX_CONSECUTIVE_REOPENS`] consecutive
    /// reopen attempts — a flapping link, not a lossy one.
    CircuitFlapping,
}

impl RpcError {
    /// Short stable label used as a span outcome in the observability
    /// layer ([`crate::obs`]).
    pub fn code(self) -> &'static str {
        match self {
            RpcError::Unreachable => "unreachable",
            RpcError::RetriesExhausted => "retries-exhausted",
            RpcError::ReplyLost => "reply-lost",
            RpcError::CircuitFlapping => "circuit-flapping",
        }
    }
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            RpcError::Unreachable => "destination unreachable",
            RpcError::RetriesExhausted => "request retries exhausted",
            RpcError::ReplyLost => "reply lost mid-conversation",
            RpcError::CircuitFlapping => "virtual circuit flapping",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RpcError {}

/// The shared request/reply state machine, parameterized only by a
/// [`RetryPolicy`]. Engines are cheap value objects — construct one per
/// call site from the policy in force.
#[derive(Clone, Copy, Debug)]
pub struct RpcEngine {
    policy: RetryPolicy,
}

impl RpcEngine {
    /// An engine applying `policy` under message loss.
    pub fn new(policy: RetryPolicy) -> Self {
        RpcEngine { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Synchronous remote procedure call (§2.3.2): request message,
    /// `serve` runs the remote handler, reply message carries
    /// `reply_bytes(&result)` back. A same-site "call" is a plain
    /// procedure call with no network traffic (§2.3.3).
    ///
    /// `serve` may be invoked more than once: a lost reply re-issues
    /// idempotent requests, re-running the handler exactly as the real
    /// system would re-serve a re-sent message.
    pub fn rpc<M: WireMsg, R>(
        &self,
        net: &Net,
        from: SiteId,
        to: SiteId,
        msg: M,
        reply_bytes: impl Fn(&R) -> usize,
        serve: impl FnMut(M) -> R,
    ) -> Result<R, RpcError> {
        if from == to {
            let mut serve = serve;
            return Ok(serve(msg));
        }
        // Every remote RPC is a span of its own, nested under whatever
        // syscall-level span the caller opened; its attempts, reopens
        // and the reply are recorded as events inside it.
        let span = net.obs_span_open(M::SERVICE, msg.kind(), from);
        let out = self.rpc_remote(net, span, from, to, msg, reply_bytes, serve);
        net.obs_span_close(
            span,
            match &out {
                Ok(_) => "ok",
                Err(e) => e.code(),
            },
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn rpc_remote<M: WireMsg, R>(
        &self,
        net: &Net,
        span: u64,
        from: SiteId,
        to: SiteId,
        msg: M,
        reply_bytes: impl Fn(&R) -> usize,
        mut serve: impl FnMut(M) -> R,
    ) -> Result<R, RpcError> {
        let kind = msg.kind();
        let reply_kind = msg.reply_kind();
        let mut attempt = 0u32;
        let mut reopens = 0u32;
        loop {
            let sent = net.send_for(M::SERVICE, from, to, kind, msg.wire_bytes());
            net.obs_request(
                span,
                from,
                to,
                kind,
                reply_kind,
                msg.wire_bytes() as u64,
                msg.idempotent(),
                &sent,
            );
            match sent {
                Ok(()) => reopens = 0,
                Err(NetError::CircuitClosed) => {
                    // The closed-circuit notice left by a lost reply (§5.1)
                    // is local knowledge, not a wire transmission:
                    // acknowledge it and reopen immediately, without
                    // spending an attempt — but never unboundedly.
                    if reopens >= self.policy.max_reopens {
                        return Err(RpcError::CircuitFlapping);
                    }
                    reopens += 1;
                    net.note_retry_for(M::SERVICE, kind);
                    continue;
                }
                Err(e) if e.is_transient() && attempt + 1 < self.policy.max_attempts => {
                    net.charge_timeout(self.policy.backoff(attempt));
                    net.note_retry_for(M::SERVICE, kind);
                    attempt += 1;
                    continue;
                }
                Err(NetError::Unreachable) => return Err(RpcError::Unreachable),
                Err(_) => return Err(RpcError::RetriesExhausted),
            }
            let result = serve(msg.clone());
            // The reply (even an error reply) crosses the network too; if
            // the partition changed while the handler ran, the reply is
            // lost.
            let bytes = reply_bytes(&result);
            // A reply dropped on the wire and a circuit aborted before
            // the reply reached the wire look identical to the waiting
            // requester: the request was served, the answer never came.
            let replied = net.send_reply_for(M::SERVICE, to, from, reply_kind, bytes);
            net.obs_reply(span, to, from, reply_kind, bytes as u64, &replied);
            match replied {
                Ok(()) => return Ok(result),
                Err(NetError::ReplyLost | NetError::CircuitClosed)
                    if msg.idempotent() && attempt + 1 < self.policy.max_attempts =>
                {
                    net.charge_timeout(self.policy.backoff(attempt));
                    net.note_retry_for(M::SERVICE, kind);
                    attempt += 1;
                }
                Err(NetError::Unreachable) => return Err(RpcError::Unreachable),
                Err(_) => return Err(RpcError::ReplyLost),
            }
        }
    }

    /// One-way message with only low-level acknowledgement (the write
    /// protocol, commit and exit notifications, §2.3.5–2.3.6): the
    /// message is retried within the policy, then `serve` handles it
    /// once at the destination; no reply message crosses the wire.
    ///
    /// A send abandoned after retry exhaustion is recorded as a one-way
    /// *loss* in the statistics — notifications silently missing their
    /// destination are exactly what partition recovery reconciles, and
    /// the accounting makes the silence visible.
    pub fn one_way<M: WireMsg, R>(
        &self,
        net: &Net,
        from: SiteId,
        to: SiteId,
        msg: M,
        serve: impl FnOnce(M) -> R,
    ) -> Result<R, RpcError> {
        if from == to {
            return Ok(serve(msg));
        }
        // One span per one-way call, so "delivered exactly once, or
        // counted lost exactly once" is auditable per call rather than
        // smeared across a whole schedule.
        let span = net.obs_span_open(M::SERVICE, msg.kind(), from);
        let out = self.one_way_remote(net, span, from, to, msg, serve);
        net.obs_span_close(
            span,
            match &out {
                Ok(_) => "ok",
                Err(e) => e.code(),
            },
        );
        out
    }

    fn one_way_remote<M: WireMsg, R>(
        &self,
        net: &Net,
        span: u64,
        from: SiteId,
        to: SiteId,
        msg: M,
        serve: impl FnOnce(M) -> R,
    ) -> Result<R, RpcError> {
        let kind = msg.kind();
        let mut attempt = 0u32;
        let mut reopens = 0u32;
        loop {
            let sent = net.send_for(M::SERVICE, from, to, kind, msg.wire_bytes());
            net.obs_one_way(span, from, to, kind, msg.wire_bytes() as u64, &sent);
            match sent {
                Ok(()) => return Ok(serve(msg)),
                Err(NetError::CircuitClosed) => {
                    if reopens >= self.policy.max_reopens {
                        net.record_one_way_loss(M::SERVICE, kind);
                        net.obs_one_way_loss(span, kind);
                        return Err(RpcError::CircuitFlapping);
                    }
                    reopens += 1;
                    net.note_retry_for(M::SERVICE, kind);
                }
                Err(e) if e.is_transient() && attempt + 1 < self.policy.max_attempts => {
                    net.charge_timeout(self.policy.backoff(attempt));
                    net.note_retry_for(M::SERVICE, kind);
                    attempt += 1;
                }
                Err(e) => {
                    net.record_one_way_loss(M::SERVICE, kind);
                    net.obs_one_way_loss(span, kind);
                    return Err(match e {
                        NetError::Unreachable => RpcError::Unreachable,
                        _ => RpcError::RetriesExhausted,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultSpec};
    use locus_types::Ticks;

    /// A minimal test protocol.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum TestMsg {
        Query,
        Transition,
    }

    impl WireMsg for TestMsg {
        const SERVICE: &'static str = "test";
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::Query => "TEST query",
                TestMsg::Transition => "TEST transition",
            }
        }
        fn reply_kind(&self) -> &'static str {
            match self {
                TestMsg::Query => "TEST query resp",
                TestMsg::Transition => "TEST transition resp",
            }
        }
        fn wire_bytes(&self) -> usize {
            64
        }
        fn idempotent(&self) -> bool {
            matches!(self, TestMsg::Query)
        }
    }

    #[test]
    fn clean_rpc_sends_request_and_reply() {
        let net = Net::new(2);
        let engine = RpcEngine::new(RetryPolicy::default());
        let out = engine
            .rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &u32| 32, |_| 7u32)
            .expect("clean rpc");
        assert_eq!(out, 7);
        let st = net.stats();
        assert_eq!(st.sends("TEST query"), 1);
        assert_eq!(st.sends("TEST query resp"), 1);
        assert_eq!(st.service("test").sends, 2);
        assert_eq!(st.service("test").bytes, 64 + 32);
    }

    #[test]
    fn same_site_call_is_a_procedure_call() {
        let net = Net::new(2);
        let engine = RpcEngine::new(RetryPolicy::default());
        let out = engine
            .rpc(&net, SiteId(1), SiteId(1), TestMsg::Query, |_: &u32| 32, |_| 9u32)
            .expect("local call");
        assert_eq!(out, 9);
        assert_eq!(net.stats().total_sends(), 0, "no network traffic");
    }

    #[test]
    fn dropped_request_is_retried_with_backoff() {
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(11).default_spec(FaultSpec::drop_rate(0.5)));
        let engine = RpcEngine::new(RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        });
        let mut served = 0u32;
        let t0 = net.now();
        engine
            .rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| served += 1)
            .expect("retries ride out drops");
        assert_eq!(served, 1, "the handler ran exactly once");
        let st = net.stats();
        if st.drops("TEST query") > 0 {
            assert!(st.service("test").retries > 0);
            assert!(net.now() >= t0 + engine.policy().base_backoff);
        }
    }

    #[test]
    fn lost_reply_reissues_idempotent_requests() {
        let net = Net::new(2);
        // Drop exactly the reply kind; requests always get through.
        net.install_faults(
            FaultPlan::new(2).kind_spec("TEST query resp", FaultSpec::drop_rate(0.9)),
        );
        let engine = RpcEngine::new(RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        });
        let mut served = 0u32;
        let out = engine.rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| {
            served += 1;
        });
        assert!(out.is_ok(), "idempotent request was re-issued to success");
        assert!(served >= 1);
        assert_eq!(
            served as u64,
            net.stats().sends("TEST query"),
            "one handler run per delivered request"
        );
    }

    #[test]
    fn lost_reply_aborts_non_idempotent_requests() {
        let net = Net::new(2);
        net.install_faults(
            FaultPlan::new(3).kind_spec("TEST transition resp", FaultSpec::drop_rate(1.0)),
        );
        let engine = RpcEngine::new(RetryPolicy::default());
        let mut served = 0u32;
        let out = engine.rpc(
            &net,
            SiteId(0),
            SiteId(1),
            TestMsg::Transition,
            |_: &()| 8,
            |_| served += 1,
        );
        assert_eq!(out, Err(RpcError::ReplyLost));
        assert_eq!(served, 1, "the ambiguity: the handler did run");
        // The §5.1 abort mark is left for the pair's next conversation.
        net.clear_faults();
        let next = engine.rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| ());
        assert!(next.is_ok(), "the next call reopens the circuit and proceeds");
        assert!(net.stats().retries("TEST query") >= 1, "reopen was counted");
    }

    #[test]
    fn unreachable_destination_fails_without_retries() {
        let net = Net::new(2);
        net.crash(SiteId(1));
        let engine = RpcEngine::new(RetryPolicy::default());
        let out = engine.rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| ());
        assert_eq!(out, Err(RpcError::Unreachable));
        assert_eq!(net.stats().retries("TEST query"), 0);
    }

    #[test]
    fn flapping_circuit_rpc_is_bounded() {
        // Regression test for the once-unbounded CircuitClosed fast path:
        // a circuit that fails on *every* reopen (injected circuit aborts
        // with probability 1) must terminate with an error, not spin.
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(5).default_spec(FaultSpec {
            circuit_abort: 1.0,
            ..Default::default()
        }));
        let engine = RpcEngine::new(RetryPolicy::default());
        let out = engine.rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| ());
        assert_eq!(out, Err(RpcError::CircuitFlapping));
        let st = net.stats();
        assert_eq!(
            st.retries("TEST query"),
            MAX_CONSECUTIVE_REOPENS as u64,
            "every reopen attempt was counted, then the engine gave up"
        );
        assert_eq!(st.sends("TEST query"), 0, "nothing ever reached the wire");
    }

    #[test]
    fn flapping_circuit_one_way_is_bounded_and_counted_lost() {
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(5).default_spec(FaultSpec {
            circuit_abort: 1.0,
            ..Default::default()
        }));
        let engine = RpcEngine::new(RetryPolicy::default());
        let mut served = false;
        let out = engine.one_way(&net, SiteId(0), SiteId(1), TestMsg::Query, |_| served = true);
        assert_eq!(out, Err(RpcError::CircuitFlapping));
        assert!(!served);
        let st = net.stats();
        assert_eq!(st.one_way_losses("TEST query"), 1);
        assert_eq!(st.service("test").losses, 1);
    }

    #[test]
    fn reopen_counter_resets_once_a_send_reaches_the_wire() {
        // An intermittent abort (well under the bound per burst) must not
        // accumulate across successful sends into a spurious
        // CircuitFlapping: 40 rpcs at abort probability 0.4 see far more
        // than MAX_CONSECUTIVE_REOPENS aborts in total, yet all succeed.
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(9).default_spec(FaultSpec {
            circuit_abort: 0.4,
            ..Default::default()
        }));
        // A generous attempt budget: reply-side aborts consume attempts,
        // and this test is about the reopen counter, not attempt
        // exhaustion.
        let engine = RpcEngine::new(RetryPolicy {
            max_attempts: 16,
            base_backoff: Ticks::millis(1),
            ..RetryPolicy::default()
        });
        for _ in 0..40 {
            engine
                .rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &()| 8, |_| ())
                .expect("intermittent aborts are ridden out");
        }
        assert!(
            net.stats().retries("TEST query") > MAX_CONSECUTIVE_REOPENS as u64,
            "the total reopen count exceeded the per-burst bound"
        );
    }

    #[test]
    fn engine_calls_emit_auditable_spans_and_feed_histograms() {
        let net = Net::new(2);
        net.set_observing(true);
        let engine = RpcEngine::new(RetryPolicy::default());
        engine
            .rpc(&net, SiteId(0), SiteId(1), TestMsg::Query, |_: &u32| 32, |_| 7u32)
            .expect("rpc");
        engine
            .one_way(&net, SiteId(0), SiteId(1), TestMsg::Transition, |_| ())
            .expect("one-way");
        let report = crate::obs::audit(&net.take_obs_events());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.spans, 2);
        assert_eq!(report.requests, 1);
        assert_eq!(report.replies, 1);
        assert_eq!(report.one_ways, 1);
        let stats = net.op_stats();
        assert!(stats
            .iter()
            .any(|s| s.service == "test" && s.op == "TEST query" && s.count == 1));
        assert!(stats
            .iter()
            .any(|s| s.op == "TEST transition" && s.count == 1));
    }

    #[test]
    fn same_site_calls_open_no_spans() {
        let net = Net::new(2);
        net.set_observing(true);
        let engine = RpcEngine::new(RetryPolicy::default());
        engine
            .rpc(&net, SiteId(1), SiteId(1), TestMsg::Query, |_: &u32| 32, |_| 1u32)
            .expect("local call");
        engine
            .one_way(&net, SiteId(1), SiteId(1), TestMsg::Transition, |_| ())
            .expect("local one-way");
        assert!(net.take_obs_events().is_empty(), "§2.3.3: no traffic, no spans");
    }

    #[test]
    fn engine_traffic_under_heavy_faults_audits_clean() {
        // Drops, duplicates, delays, circuit aborts and lost replies all
        // mixed: whatever the engine actually did must satisfy the
        // audited invariants (losses recorded, reopens bounded,
        // re-issue only when idempotent, replies matched).
        let net = Net::new(3);
        net.set_observing(true);
        net.install_faults(FaultPlan::new(42).default_spec(FaultSpec {
            drop: 0.25,
            duplicate: 0.1,
            delay_prob: 0.15,
            delay: Ticks::micros(80),
            circuit_abort: 0.1,
        }));
        let engine = RpcEngine::new(RetryPolicy {
            max_attempts: 8,
            base_backoff: Ticks::millis(1),
            ..RetryPolicy::default()
        });
        for i in 0..60u32 {
            let from = SiteId(i % 3);
            let to = SiteId((i + 1) % 3);
            if i % 3 == 0 {
                let _ = engine.one_way(&net, from, to, TestMsg::Transition, |_| ());
            } else {
                let _ = engine.rpc(&net, from, to, TestMsg::Query, |_: &u32| 16, |_| 1u32);
            }
        }
        assert_eq!(net.obs_truncated(), 0);
        let report = crate::obs::audit(&net.take_obs_events());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.requests > 0 && report.one_ways > 0);
    }

    #[test]
    fn one_way_loss_is_recorded_on_retry_exhaustion() {
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(4).default_spec(FaultSpec::drop_rate(1.0)));
        let engine = RpcEngine::new(RetryPolicy::default());
        let out = engine.one_way(&net, SiteId(0), SiteId(1), TestMsg::Query, |_| ());
        assert_eq!(out, Err(RpcError::RetriesExhausted));
        let st = net.stats();
        assert_eq!(st.one_way_losses("TEST query"), 1);
        assert_eq!(st.total_one_way_losses(), 1);
        assert_eq!(st.service("test").losses, 1);
        assert_eq!(
            st.service("test").drops,
            engine.policy().max_attempts as u64,
            "every attempt was dropped and attributed to the service"
        );
    }
}
