//! The simulated LOCUS network substrate.
//!
//! The original system ran on a 10 Mbit broadcast Ethernet with specialized
//! kernel-to-kernel protocols ("no acknowledgements, flow control or any
//! other underlying mechanism", §2.3.3 fn). This crate reproduces the
//! *properties* that matter to the paper's evaluation:
//!
//! * a reachability matrix with **enforced transitivity** (§5.1: the
//!   high-level protocols assume that if A talks to B and B to C then A
//!   talks to C; the low-level machinery guarantees it) — reachability is
//!   computed over connected components of live links;
//! * **virtual circuits** that deliver in order and are closed by partition
//!   changes, aborting ongoing activity (§5.1);
//! * a **virtual clock** and a latency model calibrated to a 1983 Ethernet,
//!   so experiment harnesses can report simulated elapsed time;
//! * per-message-type **statistics** and a **protocol trace** from which
//!   the Figure 1 / Figure 2 message sequences are regenerated.
//!
//! All state is behind interior mutability so a `&Net` can be threaded
//! through nested simulated remote procedure calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod clock;
pub mod engine;
pub mod fault;
pub mod health;
pub mod latency;
pub mod obs;
pub mod rpc;
pub mod stats;
pub mod topology;
pub mod trace;

use std::cell::RefCell;

use locus_types::{SiteId, Ticks};

pub use circuit::CircuitTable;
pub use clock::VirtualClock;
pub use engine::{engine_from_env, EngineKind, PostStamp};
pub use fault::{
    site_stream_seed, FaultAction, FaultPlan, FaultSpec, GraySpec, RetryPolicy, ScheduledFault,
    SimRng,
};
pub use health::{HealthEvent, HealthMonitor, HealthPolicy, SiteHealth};
pub use latency::LatencyModel;
pub use obs::{
    audit, export_jsonl, parse_jsonl, render_op_stats, AuditReport, Histogram, ObsEvent, Observer,
    OpStat, SendOutcome, CSS_CLAIM_COOLDOWN,
};
pub use rpc::{RpcEngine, RpcError, WireMsg, MAX_CONSECUTIVE_REOPENS};
pub use stats::{LinkStats, NetStats, ServiceStats};
pub use topology::Topology;
pub use trace::{Trace, TraceEvent};

use fault::{FaultInjector, Verdict};

/// Errors surfaced by the network layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// Destination site is crashed or in a different partition.
    Unreachable,
    /// The virtual circuit to the destination was closed mid-conversation
    /// (partition change while an operation was in flight, §5.1).
    CircuitClosed,
    /// A site attempted to send a network message to itself; local service
    /// must be performed by direct procedure call (§2.3.3).
    SelfSend,
    /// The message was lost to an injected fault. The destination never
    /// saw it; the sender may safely retry ([`Net::send_with_retry`]).
    Dropped,
    /// A *reply* was lost to an injected fault. The request was already
    /// served, so the conversation is ambiguous: the circuit closes
    /// (§5.1) and the next send between the pair observes
    /// [`NetError::CircuitClosed`].
    ReplyLost,
}

impl NetError {
    /// Whether resending the same message can succeed without help from
    /// a reconfiguration step (transient fault, not a topology change).
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            NetError::Dropped | NetError::ReplyLost | NetError::CircuitClosed
        )
    }
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NetError::Unreachable => "destination unreachable",
            NetError::CircuitClosed => "virtual circuit closed",
            NetError::SelfSend => "network send to self",
            NetError::Dropped => "message dropped by fault injection",
            NetError::ReplyLost => "reply dropped by fault injection",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// The simulated network: topology + circuits + clock + accounting.
///
/// # Examples
///
/// ```
/// use locus_net::Net;
/// use locus_types::SiteId;
///
/// let net = Net::new(3);
/// net.send(SiteId(0), SiteId(1), "OPEN req", 64).unwrap();
/// net.partition(&[vec![SiteId(0)], vec![SiteId(1), SiteId(2)]]);
/// assert!(net.send(SiteId(0), SiteId(1), "OPEN req", 64).is_err());
/// ```
pub struct Net {
    inner: RefCell<Inner>,
}

/// A snapshot of a shard's clock and event-buffer positions at an
/// operation boundary ([`Net::op_mark`]). Consecutive marks let the
/// epoch barrier slice one operation's events out of the shard buffers
/// and re-base them onto the merged clock.
#[derive(Clone, Copy, Debug)]
pub struct OpMark {
    /// Virtual time at the boundary.
    pub now: Ticks,
    trace_len: usize,
    obs_len: usize,
}

struct Inner {
    topology: Topology,
    circuits: CircuitTable,
    clock: VirtualClock,
    latency: LatencyModel,
    stats: NetStats,
    trace: Trace,
    obs: Observer,
    faults: FaultInjector,
    health: HealthMonitor,
}

impl Inner {
    /// Records a health transition as an observability note (quarantine
    /// windows are what the trace auditor's isolation invariants replay).
    fn note_health(&mut self, ev: Option<HealthEvent>) {
        let Some(ev) = ev else { return };
        let now = self.clock.now();
        match ev {
            HealthEvent::Quarantined(site, score) => {
                self.obs.note(
                    now,
                    site,
                    "health.quarantine",
                    &format!("S{}", site.0),
                    score as u64,
                );
            }
            HealthEvent::Readmitted(site) => {
                self.obs
                    .note(now, site, "health.readmit", &format!("S{}", site.0), 0);
            }
        }
    }
    /// Applies every scheduled fault event the virtual clock has passed.
    /// Called lazily on entry to the send and reachability paths, so
    /// crash/revive/flap schedules take effect exactly when simulated time
    /// reaches them, whatever advanced the clock.
    fn apply_due_faults(&mut self) {
        let now = self.clock.now();
        for action in self.faults.due_events(now) {
            match action {
                FaultAction::Crash(site) => {
                    self.topology.set_up(site, false);
                    self.stats.circuits_closed += self.circuits.close_involving(site);
                }
                FaultAction::Revive(site) => self.topology.set_up(site, true),
                FaultAction::LinkDown(a, b) => {
                    self.topology.set_link(a, b, false);
                    if self.circuits.is_open(a, b) {
                        self.circuits.close_pair(a, b);
                        self.stats.circuits_closed += 1;
                    }
                }
                FaultAction::LinkUp(a, b) => self.topology.set_link(a, b, true),
            }
        }
    }
}

impl Net {
    /// Creates a fully connected network of `n` sites with the default
    /// latency model.
    pub fn new(n: usize) -> Self {
        Net::with_latency(n, LatencyModel::ethernet_1983())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(n: usize, latency: LatencyModel) -> Self {
        Net {
            inner: RefCell::new(Inner {
                topology: Topology::new(n),
                circuits: CircuitTable::new(),
                clock: VirtualClock::new(),
                latency,
                stats: NetStats::new(),
                trace: Trace::new(),
                obs: Observer::new(),
                faults: FaultInjector::inert(),
                health: HealthMonitor::new(),
            }),
        }
    }

    /// Installs a fault-injection plan (replacing any previous one and
    /// rewinding its RNG to the plan's seed). Already-scheduled events
    /// whose time has passed fire on the next send.
    pub fn install_faults(&self, plan: FaultPlan) {
        self.inner.borrow_mut().faults = FaultInjector::new(plan);
    }

    /// Removes fault injection; subsequent traffic is delivered cleanly.
    pub fn clear_faults(&self) {
        self.inner.borrow_mut().faults = FaultInjector::inert();
    }

    /// Number of sites (live or not).
    pub fn site_count(&self) -> usize {
        self.inner.borrow().topology.site_count()
    }

    /// Sends one message of `bytes` payload from `from` to `to`.
    ///
    /// On success the virtual clock advances by the message latency, the
    /// per-kind statistics are updated and a trace event is recorded. A
    /// failed send (unreachable destination) closes any circuit between the
    /// pair and is counted separately; timeout accounting is the caller's
    /// policy. Under an installed [`FaultPlan`] the message may also be
    /// dropped ([`NetError::Dropped`] — safe to retry), duplicated, or
    /// delayed.
    pub fn send(
        &self,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
    ) -> Result<(), NetError> {
        self.send_impl(from, to, kind, bytes, false, None)
    }

    /// Sends a *reply* message: like [`Net::send`], except an injected
    /// drop is a [`NetError::ReplyLost`] — the request was already served,
    /// so the circuit is closed mid-conversation and the pair's next send
    /// observes [`NetError::CircuitClosed`] (§5.1).
    pub fn send_reply(
        &self,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
    ) -> Result<(), NetError> {
        self.send_impl(from, to, kind, bytes, true, None)
    }

    /// [`Net::send`] with the send additionally attributed to `service`
    /// in the per-service accounting table (used by the
    /// [`rpc::RpcEngine`]).
    pub fn send_for(
        &self,
        service: &'static str,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
    ) -> Result<(), NetError> {
        self.send_impl(from, to, kind, bytes, false, Some(service))
    }

    /// [`Net::send_reply`] attributed to `service`.
    pub fn send_reply_for(
        &self,
        service: &'static str,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
    ) -> Result<(), NetError> {
        self.send_impl(from, to, kind, bytes, true, Some(service))
    }

    fn send_impl(
        &self,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
        is_reply: bool,
        service: Option<&'static str>,
    ) -> Result<(), NetError> {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        if from == to {
            return Err(NetError::SelfSend);
        }
        // Gray-failure signals blame the remote conversation partner: the
        // destination of a request, the *server* (sender) of a reply —
        // the site a waiting requester would accuse of the silence.
        let blame = if is_reply { from } else { to };
        if !g.topology.can_communicate(from, to) {
            g.circuits.close_pair(from, to);
            g.stats.record_failure(kind);
            g.stats.record_link_fail(from, to);
            return Err(NetError::Unreachable);
        }
        if g.circuits.take_abort(from, to) {
            g.stats.record_failure(kind);
            g.stats.record_link_fail(from, to);
            // A reopen notice is a flap signal: it means the previous
            // conversation on this pair died mid-flight.
            let ev = g.health.observe_fault(blame);
            g.note_health(ev);
            return Err(NetError::CircuitClosed);
        }
        g.circuits.ensure_open(from, to);
        let mut verdict = g.faults.judge(from, to, kind);
        let gray = g.faults.gray_for(from, to);
        if let Some(gs) = gray {
            // A one-directional block silently loses everything in this
            // direction (asymmetric reachability) — unless the circuit
            // already aborted before the message reached the wire.
            if gs.blocked && verdict != Verdict::CircuitAbort {
                g.stats.record_link_blocked(from, to);
                verdict = Verdict::Drop;
            }
        }
        if verdict == Verdict::CircuitAbort {
            // The virtual circuit fails before the message reaches the
            // wire (§5.1): no transmission latency, the pair's circuit is
            // torn down, and the sender observes the closure locally.
            g.circuits.close_pair(from, to);
            g.stats.circuits_closed += 1;
            g.stats.record_failure(kind);
            g.stats.record_link_fail(from, to);
            let ev = g.health.observe_fault(blame);
            g.note_health(ev);
            return Err(NetError::CircuitClosed);
        }
        // The message reaches the wire in every remaining verdict: the
        // sender pays transmission latency whether or not delivery happens.
        let mut cost = g.latency.message_cost(bytes);
        if let Verdict::Delay(extra) = verdict {
            cost += extra;
            g.stats.record_delay(kind);
        }
        if let Some(gs) = gray {
            if gs.is_slow() {
                cost = gs.inflate(cost);
                g.stats.record_link_slowed(from, to);
            }
        }
        g.clock.advance(cost);
        let now = g.clock.now();
        if verdict == Verdict::Drop {
            g.stats.record_drop(kind);
            g.stats.record_link_drop(from, to);
            if let Some(s) = service {
                g.stats.record_service_drop(s);
            }
            g.trace.record(TraceEvent {
                at: now,
                from,
                to,
                kind,
                bytes,
                dropped: true,
            });
            let ev = g.health.observe_fault(blame);
            g.note_health(ev);
            return if is_reply {
                g.circuits.abort_pair(from, to);
                g.stats.circuits_closed += 1;
                Err(NetError::ReplyLost)
            } else {
                Err(NetError::Dropped)
            };
        }
        g.stats.record(kind, bytes);
        g.stats.record_link_send(from, to, bytes);
        if let Some(s) = service {
            g.stats.record_service_send(s, bytes);
        }
        let ev = g.health.observe_success(from, to, blame, cost);
        g.note_health(ev);
        g.trace.record(TraceEvent {
            at: now,
            from,
            to,
            kind,
            bytes,
            dropped: false,
        });
        if verdict == Verdict::Duplicate {
            // The wire delivers a second copy; receivers are idempotent at
            // the message level, so only the accounting notices.
            let dup_cost = g.latency.message_cost(bytes);
            g.clock.advance(dup_cost);
            let at = g.clock.now();
            g.stats.record_duplicate(kind);
            g.trace.record(TraceEvent {
                at,
                from,
                to,
                kind,
                bytes,
                dropped: false,
            });
        }
        Ok(())
    }

    /// Sends with bounded retries under `policy`: each transient failure
    /// (injected drop or a mid-conversation circuit abort) charges the
    /// policy's exponential backoff to the virtual clock before the
    /// resend, and is counted as a retry. Non-transient failures
    /// (unreachable, self-send) return immediately.
    pub fn send_with_retry(
        &self,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
        policy: &RetryPolicy,
    ) -> Result<(), NetError> {
        let mut attempt = 0;
        let mut reopens = 0u32;
        loop {
            match self.send(from, to, kind, bytes) {
                Ok(()) => return Ok(()),
                Err(NetError::CircuitClosed) => {
                    // A closed-circuit notice is local knowledge left by a
                    // lost reply (§5.1), not a wire transmission; reopening
                    // is immediate and spends no attempt — but a link that
                    // flaps on every reopen must not spin forever.
                    if reopens >= policy.max_reopens {
                        return Err(NetError::CircuitClosed);
                    }
                    reopens += 1;
                    self.note_retry(kind);
                }
                Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts => {
                    reopens = 0;
                    self.charge_timeout(policy.backoff(attempt));
                    self.note_retry(kind);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Counts one caller-level retry of `kind` in the statistics (used by
    /// higher layers that re-issue whole RPCs rather than raw sends).
    pub fn note_retry(&self, kind: &'static str) {
        self.inner.borrow_mut().stats.record_retry(kind);
    }

    /// [`Net::note_retry`] additionally attributed to `service` in the
    /// per-service accounting table.
    pub fn note_retry_for(&self, service: &'static str, kind: &'static str) {
        let mut g = self.inner.borrow_mut();
        g.stats.record_retry(kind);
        g.stats.record_service_retry(service);
    }

    /// Records a one-way notification of `kind` abandoned after retry
    /// exhaustion, attributed to `service` (partition recovery later
    /// reconciles what the notification would have carried, §4).
    pub fn record_one_way_loss(&self, service: &'static str, kind: &'static str) {
        self.inner
            .borrow_mut()
            .stats
            .record_one_way_loss(service, kind);
    }

    /// Accounts local (same-site) kernel work of `cost` ticks; used by the
    /// simulated kernels so CPU time shows up on the same clock as wire
    /// time.
    pub fn charge_cpu(&self, cost: Ticks) {
        self.inner.borrow_mut().clock.advance(cost);
    }

    /// Like [`Net::charge_cpu`], but also attributes the cycles to the
    /// site that spent them in the per-site busy table. The single global
    /// clock cannot show *where* load concentrates; the busy table is what
    /// the scale sweep and the CSS placement policy read to find hot
    /// sites.
    pub fn charge_cpu_at(&self, site: SiteId, cost: Ticks) {
        let mut g = self.inner.borrow_mut();
        g.clock.advance(cost);
        g.stats.record_busy(site, cost.as_micros());
    }

    /// Sets a named stats gauge (e.g. a sampled CSS request-queue depth);
    /// see [`NetStats::set_gauge`].
    pub fn set_stat_gauge(&self, key: &str, value: u64) {
        self.inner.borrow_mut().stats.set_gauge(key, value);
    }

    /// Current virtual time.
    pub fn now(&self) -> Ticks {
        self.inner.borrow().clock.now()
    }

    /// Whether `from` can currently communicate with `to` (both up, same
    /// connected component; a site always reaches itself while up).
    pub fn reachable(&self, from: SiteId, to: SiteId) -> bool {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        g.topology.can_communicate(from, to)
    }

    /// Whether the site is up.
    pub fn is_up(&self, site: SiteId) -> bool {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        g.topology.is_up(site)
    }

    /// All sites currently in `site`'s partition (including itself), in
    /// site order. Empty if the site is down.
    pub fn partition_of(&self, site: SiteId) -> Vec<SiteId> {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        g.topology.partition_of(site)
    }

    /// The current partitions (connected components of live sites).
    pub fn partitions(&self) -> Vec<Vec<SiteId>> {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        g.topology.components()
    }

    /// Splits the network into the given groups: links inside a group are
    /// restored, links across groups are cut. Circuits across groups close.
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_partition(groups);
        let topo = &g.topology;
        let mut to_close = Vec::new();
        g.circuits.for_each_open(|a, b| {
            if !topo.can_communicate(a, b) {
                to_close.push((a, b));
            }
        });
        for (a, b) in to_close {
            g.circuits.close_pair(a, b);
            g.stats.circuits_closed += 1;
        }
    }

    /// Restores full connectivity among all live sites.
    pub fn heal(&self) {
        self.inner.borrow_mut().topology.heal();
    }

    /// Cuts the single link between two sites (circuits between them close).
    /// Note reachability is transitive, so the pair may still communicate
    /// through a third site.
    pub fn cut_link(&self, a: SiteId, b: SiteId) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_link(a, b, false);
        g.circuits.close_pair(a, b);
        g.stats.circuits_closed += 1;
    }

    /// Restores the link between two sites.
    pub fn restore_link(&self, a: SiteId, b: SiteId) {
        self.inner.borrow_mut().topology.set_link(a, b, true);
    }

    /// Crashes a site: all its circuits close and nothing reaches it.
    pub fn crash(&self, site: SiteId) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_up(site, false);
        let closed = g.circuits.close_involving(site);
        g.stats.circuits_closed += closed;
    }

    /// Brings a crashed site back up (with its previous links intact).
    pub fn revive(&self, site: SiteId) {
        self.inner.borrow_mut().topology.set_up(site, true);
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats.clone()
    }

    /// Resets message statistics (the topology, clock and trace persist).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = NetStats::new();
    }

    /// Enables or disables trace recording.
    pub fn set_tracing(&self, on: bool) {
        self.inner.borrow_mut().trace.set_enabled(on);
    }

    /// Drains and returns the recorded trace events.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.inner.borrow_mut().trace.take()
    }

    /// How many trace events were silently discarded past the trace cap
    /// since the last [`Net::take_trace`]. A determinism check comparing
    /// truncated traces compares prefixes, not schedules — callers should
    /// fail when this is nonzero.
    pub fn trace_truncated(&self) -> u64 {
        self.inner.borrow().trace.truncated()
    }

    /// Enables or disables span observation ([`obs`]).
    pub fn set_observing(&self, on: bool) {
        self.inner.borrow_mut().obs.set_enabled(on);
    }

    /// Whether span observation is enabled.
    pub fn observing(&self) -> bool {
        self.inner.borrow().obs.enabled()
    }

    /// Opens an observability span for a syscall-level operation (or a
    /// nested engine RPC) on behalf of `site`; returns the span id to
    /// pass to [`Net::obs_span_close`] (0 while observation is off).
    pub fn obs_span_open(&self, service: &str, op: &str, site: SiteId) -> u64 {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs.span_open(now, service, op, site)
    }

    /// Closes an observability span with an outcome label, feeding its
    /// virtual-time duration into the per-(service, op) histogram.
    pub fn obs_span_close(&self, span: u64, outcome: &str) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs.span_close(now, span, outcome);
    }

    /// Records one request transmission attempt under `span` (used by the
    /// [`rpc::RpcEngine`]).
    #[allow(clippy::too_many_arguments)]
    pub fn obs_request(
        &self,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        reply_kind: &str,
        bytes: u64,
        idempotent: bool,
        result: &Result<(), NetError>,
    ) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs.request(
            now,
            span,
            from,
            to,
            kind,
            reply_kind,
            bytes,
            idempotent,
            obs::SendOutcome::of(result),
        );
    }

    /// Records one reply transmission attempt under `span`.
    pub fn obs_reply(
        &self,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        bytes: u64,
        result: &Result<(), NetError>,
    ) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs
            .reply(now, span, from, to, kind, bytes, obs::SendOutcome::of(result));
    }

    /// Records one one-way transmission attempt under `span`.
    pub fn obs_one_way(
        &self,
        span: u64,
        from: SiteId,
        to: SiteId,
        kind: &str,
        bytes: u64,
        result: &Result<(), NetError>,
    ) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs
            .one_way(now, span, from, to, kind, bytes, obs::SendOutcome::of(result));
    }

    /// Records a one-way send abandoned after retry exhaustion under
    /// `span` (paired with [`Net::record_one_way_loss`]).
    pub fn obs_one_way_loss(&self, span: u64, kind: &str) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs.one_way_loss(now, span, kind);
    }

    /// Records a protocol annotation (e.g. `commit.begin`), attached to
    /// the innermost open span.
    pub fn obs_note(&self, site: SiteId, key: &str, label: &str, value: u64) {
        let mut g = self.inner.borrow_mut();
        let now = g.clock.now();
        g.obs.note(now, site, key, label, value);
    }

    /// Drains the recorded observability events (histograms persist).
    pub fn take_obs_events(&self) -> Vec<ObsEvent> {
        self.inner.borrow_mut().obs.take_events()
    }

    /// How many observability events were discarded past the cap since
    /// the last [`Net::take_obs_events`].
    pub fn obs_truncated(&self) -> u64 {
        self.inner.borrow().obs.truncated()
    }

    /// Snapshot of the per-(service, op) virtual-time latency histograms.
    pub fn obs_histograms(&self) -> std::collections::BTreeMap<(String, String), Histogram> {
        self.inner.borrow().obs.histograms()
    }

    /// Per-(service, op) latency summary rows (count, p50, p95, max).
    pub fn op_stats(&self) -> Vec<OpStat> {
        self.inner.borrow().obs.op_stats()
    }

    /// The latency model in force.
    pub fn latency(&self) -> LatencyModel {
        self.inner.borrow().latency
    }

    /// Replaces the latency model (used by the layering-ablation bench).
    pub fn set_latency(&self, latency: LatencyModel) {
        self.inner.borrow_mut().latency = latency;
    }

    /// Charges a timeout delay to the virtual clock (a poll that never got
    /// an answer still costs wall-clock time, §5.5). Scheduled fault
    /// events the delay passes over take effect immediately.
    pub fn charge_timeout(&self, span: Ticks) {
        let mut g = self.inner.borrow_mut();
        g.clock.advance(span);
        g.apply_due_faults();
    }

    /// Number of currently open virtual circuits.
    pub fn open_circuits(&self) -> usize {
        self.inner.borrow().circuits.open_count()
    }

    /// Whether the installed fault plan still has scheduled events that
    /// have not fired. Scheduled faults act on absolute virtual time, so
    /// the parallel engine must run epochs serially until the schedule is
    /// exhausted — a shard must never fire one.
    pub fn has_unfired_fault_events(&self) -> bool {
        self.inner.borrow().faults.has_unfired_events()
    }

    /// Forks a private network shard for one parallel-epoch site group
    /// ([`engine`]): the topology is snapshotted, the clock starts at the
    /// global `now`, circuits / health rows / fault-RNG streams belonging
    /// to `sites` *move* into the shard, and the shard records into fresh
    /// trace/observer/stats buffers that [`Net::absorb_shards`] merges
    /// back deterministically. The caller must guarantee the group's
    /// operations only touch `sites` and that no scheduled fault events
    /// remain unfired (the engine serializes such epochs).
    pub fn fork_shard(&self, sites: &std::collections::BTreeSet<SiteId>) -> Net {
        let mut g = self.inner.borrow_mut();
        g.apply_due_faults();
        let mut clock = VirtualClock::new();
        clock.set(g.clock.now());
        let mut trace = Trace::new();
        trace.set_enabled(g.trace.enabled());
        Net {
            inner: RefCell::new(Inner {
                topology: g.topology.clone(),
                circuits: g.circuits.split_sites(sites),
                clock,
                latency: g.latency,
                stats: NetStats::new(),
                trace,
                obs: g.obs.fork_shard(),
                faults: g.faults.split_sites(sites),
                health: g.health.split_sites(sites),
            }),
        }
    }

    /// Snapshots the clock and event-buffer positions at an operation
    /// boundary inside a shard. Consecutive marks delimit one operation's
    /// segment; the epoch barrier re-bases segments onto the merged clock
    /// in submission order, which is what makes the parallel engine's
    /// byte stream identical to the sequential engine's.
    pub fn op_mark(&self) -> OpMark {
        let g = self.inner.borrow();
        OpMark {
            now: g.clock.now(),
            trace_len: g.trace.len(),
            obs_len: g.obs.len(),
        }
    }

    /// Merges epoch shards back at the barrier. `order` lists
    /// (shard index, local op index) pairs in global submission order;
    /// each shard's `marks` must hold one [`Net::op_mark`] per op
    /// boundary (ops + 1 entries). Per-op event segments are appended
    /// with their times shifted onto the merged clock and observer span
    /// ids renumbered in first-appearance order; the global clock ends at
    /// the sum of all op durations; statistics, histograms, circuits,
    /// health rows and fault streams are folded back in shard order.
    /// Panics if a shard overflowed an event cap mid-epoch (the merged
    /// stream could otherwise silently lose interior events).
    pub fn absorb_shards(&self, shards: Vec<(Net, Vec<OpMark>)>, order: &[(usize, usize)]) {
        struct ShardParts {
            marks: Vec<OpMark>,
            trace: Vec<TraceEvent>,
            obs_events: Vec<ObsEvent>,
            obs_hists: std::collections::BTreeMap<(String, String), Histogram>,
            stats: NetStats,
            circuits: CircuitTable,
            faults: FaultInjector,
            health: HealthMonitor,
            remap: std::collections::BTreeMap<u64, u64>,
        }
        let mut parts: Vec<ShardParts> = shards
            .into_iter()
            .map(|(net, marks)| {
                let inner = net.inner.into_inner();
                assert_eq!(
                    inner.trace.truncated(),
                    0,
                    "a shard trace overflowed TRACE_CAP mid-epoch; shrink the epoch"
                );
                let (obs_events, obs_truncated, obs_hists) = inner.obs.into_shard_parts();
                assert_eq!(
                    obs_truncated, 0,
                    "a shard observer overflowed OBS_CAP mid-epoch; shrink the epoch"
                );
                ShardParts {
                    marks,
                    trace: inner.trace.into_events(),
                    obs_events,
                    obs_hists,
                    stats: inner.stats,
                    circuits: inner.circuits,
                    faults: inner.faults,
                    health: inner.health,
                    remap: std::collections::BTreeMap::new(),
                }
            })
            .collect();
        let mut g = self.inner.borrow_mut();
        let mut now = g.clock.now();
        for &(s, j) in order {
            let p = &mut parts[s];
            let (m0, m1) = (p.marks[j], p.marks[j + 1]);
            assert!(now >= m0.now, "epoch merge would rewind an op segment");
            let shift = now - m0.now;
            for ev in &p.trace[m0.trace_len..m1.trace_len] {
                let mut ev = ev.clone();
                ev.at += shift;
                g.trace.record(ev);
            }
            g.obs
                .absorb_segment(&p.obs_events[m0.obs_len..m1.obs_len], shift, &mut p.remap);
            now += m1.now - m0.now;
        }
        g.clock.set(now);
        for p in parts {
            g.stats.merge_from(p.stats);
            g.obs.merge_hists(p.obs_hists);
            g.circuits.absorb(p.circuits);
            g.faults.absorb(p.faults);
            g.health.absorb(p.health);
        }
    }

    /// Enables the passive gray-failure health monitor with `policy`,
    /// resetting any previous scores. The monitor consumes only signals
    /// the network layer already produces (send outcomes, per-message
    /// latency) — no probes, no clock charges, no RNG rolls — so enabling
    /// it never perturbs a deterministic schedule ("observability must
    /// stay free").
    pub fn enable_health(&self, policy: HealthPolicy) {
        self.inner.borrow_mut().health.enable(policy);
    }

    /// Whether the health monitor is enabled.
    pub fn health_enabled(&self) -> bool {
        self.inner.borrow().health.enabled()
    }

    /// Whether `site` is currently isolated by the health monitor
    /// (quarantined or still on probation). Quarantined sites must be
    /// skipped for CSS eligibility and replica reads; always `false`
    /// while the monitor is disabled.
    pub fn quarantined(&self, site: SiteId) -> bool {
        self.inner.borrow().health.quarantined(site)
    }

    /// The health state of `site` as scored by the monitor.
    pub fn site_health(&self, site: SiteId) -> SiteHealth {
        self.inner.borrow().health.state(site)
    }

    /// The current suspicion score of `site` (0 = fully healthy).
    pub fn health_score(&self, site: SiteId) -> u32 {
        self.inner.borrow().health.score(site)
    }

    /// Snapshot of every site the monitor has scored, in site order.
    pub fn health_snapshot(&self) -> Vec<(SiteId, SiteHealth, u32)> {
        self.inner.borrow().health.snapshot()
    }

    /// Moves a quarantined site to probation: the recovery layer calls
    /// this before issuing probe traffic. The site stays isolated
    /// ([`Net::quarantined`] remains true) until the policy's required
    /// count of consecutive clean probes readmits it; any fault during
    /// probation silently re-quarantines. Returns whether the transition
    /// happened (false if the site was not quarantined).
    pub fn begin_probation(&self, site: SiteId) -> bool {
        let mut g = self.inner.borrow_mut();
        if g.health.begin_probation(site) {
            let now = g.clock.now();
            g.obs
                .note(now, site, "health.probation", &format!("S{}", site.0), 0);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_clock_and_counts() {
        let net = Net::new(2);
        let t0 = net.now();
        net.send(SiteId(0), SiteId(1), "READ req", 32).unwrap();
        assert!(net.now() > t0);
        assert_eq!(net.stats().sends("READ req"), 1);
    }

    #[test]
    fn self_send_is_rejected() {
        let net = Net::new(2);
        assert_eq!(
            net.send(SiteId(0), SiteId(0), "x", 0),
            Err(NetError::SelfSend)
        );
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let net = Net::new(4);
        net.partition(&[vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]]);
        assert!(net.send(SiteId(0), SiteId(1), "x", 1).is_ok());
        assert_eq!(
            net.send(SiteId(1), SiteId(2), "x", 1),
            Err(NetError::Unreachable)
        );
        net.heal();
        assert!(net.send(SiteId(1), SiteId(2), "x", 1).is_ok());
    }

    #[test]
    fn transitivity_survives_single_link_cut() {
        // §5.4: a single communications failure must not fragment the
        // network — sites 0 and 1 remain mutually reachable through 2.
        let net = Net::new(3);
        net.cut_link(SiteId(0), SiteId(1));
        assert!(net.reachable(SiteId(0), SiteId(1)));
        assert_eq!(net.partitions().len(), 1);
    }

    #[test]
    fn crash_removes_site_from_partition() {
        let net = Net::new(3);
        net.crash(SiteId(2));
        assert!(!net.reachable(SiteId(0), SiteId(2)));
        assert_eq!(net.partition_of(SiteId(0)), vec![SiteId(0), SiteId(1)]);
        assert!(net.partition_of(SiteId(2)).is_empty());
        net.revive(SiteId(2));
        assert!(net.reachable(SiteId(0), SiteId(2)));
    }

    #[test]
    fn failed_send_closes_circuit_and_is_counted() {
        let net = Net::new(2);
        net.send(SiteId(0), SiteId(1), "x", 1).unwrap();
        assert_eq!(net.open_circuits(), 1);
        net.crash(SiteId(1));
        assert_eq!(net.open_circuits(), 0);
        assert!(net.send(SiteId(0), SiteId(1), "x", 1).is_err());
        assert_eq!(net.stats().failures("x"), 1);
    }

    #[test]
    fn trace_records_sequence() {
        let net = Net::new(3);
        net.set_tracing(true);
        net.send(SiteId(0), SiteId(1), "OPEN req", 10).unwrap();
        net.send(SiteId(1), SiteId(2), "SS poll", 10).unwrap();
        let tr = net.take_trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].kind, "OPEN req");
        assert!(tr[0].at < tr[1].at);
    }

    #[test]
    fn reachability_requires_both_sites_up() {
        let net = Net::new(2);
        net.crash(SiteId(0));
        assert!(!net.reachable(SiteId(0), SiteId(1)));
        assert!(!net.reachable(SiteId(0), SiteId(0)));
        assert!(net.reachable(SiteId(1), SiteId(1)));
    }

    #[test]
    fn injected_drops_surface_and_are_counted() {
        let net = Net::new(2);
        net.set_tracing(true);
        net.install_faults(FaultPlan::new(7).default_spec(FaultSpec::drop_rate(1.0)));
        assert_eq!(net.send(SiteId(0), SiteId(1), "x", 8), Err(NetError::Dropped));
        assert_eq!(net.stats().drops("x"), 1);
        let tr = net.take_trace();
        assert_eq!(tr.len(), 1);
        assert!(tr[0].dropped);
        // A dropped *request* leaves the circuit open for a retry.
        assert_eq!(net.open_circuits(), 1);
        net.clear_faults();
        assert!(net.send(SiteId(0), SiteId(1), "x", 8).is_ok());
    }

    #[test]
    fn dropped_reply_closes_circuit_and_surfaces_circuit_closed() {
        // §5.1: failure of a virtual circuit mid-conversation aborts the
        // ongoing activity. The request was served, the reply is lost: the
        // circuit closes and the next send between the pair is refused.
        let net = Net::new(2);
        net.send(SiteId(0), SiteId(1), "OPEN req", 8).unwrap();
        assert_eq!(net.open_circuits(), 1);
        net.install_faults(FaultPlan::new(1).default_spec(FaultSpec::drop_rate(1.0)));
        assert_eq!(
            net.send_reply(SiteId(1), SiteId(0), "OPEN resp", 8),
            Err(NetError::ReplyLost)
        );
        assert_eq!(net.open_circuits(), 0, "reply loss closed the circuit");
        net.clear_faults();
        assert_eq!(
            net.send(SiteId(0), SiteId(1), "OPEN req", 8),
            Err(NetError::CircuitClosed),
            "the caller observes the abort"
        );
        // After the abort is observed, a fresh circuit opens normally.
        assert!(net.send(SiteId(0), SiteId(1), "OPEN req", 8).is_ok());
        assert_eq!(net.open_circuits(), 1);
    }

    #[test]
    fn send_with_retry_rides_out_transient_drops() {
        let net = Net::new(2);
        // Seed chosen arbitrarily; with drop 0.5 and 10 attempts the
        // (deterministic) sequence succeeds well before exhaustion.
        net.install_faults(FaultPlan::new(11).default_spec(FaultSpec::drop_rate(0.5)));
        let policy = RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        };
        let t0 = net.now();
        net.send_with_retry(SiteId(0), SiteId(1), "x", 8, &policy)
            .expect("retries ride out drops");
        let stats = net.stats();
        assert_eq!(stats.sends("x"), 1);
        assert_eq!(stats.retries("x"), stats.drops("x"), "one retry per drop");
        if stats.drops("x") > 0 {
            assert!(net.now() >= t0 + policy.base_backoff, "backoff was charged");
        }
    }

    #[test]
    fn send_with_retry_gives_up_on_unreachable() {
        let net = Net::new(2);
        net.crash(SiteId(1));
        assert_eq!(
            net.send_with_retry(SiteId(0), SiteId(1), "x", 8, &RetryPolicy::default()),
            Err(NetError::Unreachable)
        );
        assert_eq!(net.stats().retries("x"), 0, "non-transient: no retries");
    }

    #[test]
    fn scheduled_crash_window_follows_the_virtual_clock() {
        let net = Net::new(2);
        let at = net.now() + Ticks::millis(1);
        let until = at + Ticks::millis(5);
        net.install_faults(FaultPlan::new(0).crash_window(SiteId(1), at, until));
        assert!(net.reachable(SiteId(0), SiteId(1)), "before the window");
        net.charge_timeout(Ticks::millis(2));
        assert!(!net.is_up(SiteId(1)), "inside the window");
        assert_eq!(
            net.send(SiteId(0), SiteId(1), "x", 8),
            Err(NetError::Unreachable)
        );
        net.charge_timeout(Ticks::millis(10));
        assert!(net.reachable(SiteId(0), SiteId(1)), "after the window");
        assert!(net.send(SiteId(0), SiteId(1), "x", 8).is_ok());
    }

    #[test]
    fn link_flap_closes_open_circuit_and_recovers() {
        let net = Net::new(2);
        net.send(SiteId(0), SiteId(1), "x", 8).unwrap();
        let at = net.now() + Ticks::micros(1);
        net.install_faults(FaultPlan::new(0).link_flap(
            SiteId(0),
            SiteId(1),
            at,
            at + Ticks::millis(1),
        ));
        net.charge_timeout(Ticks::micros(5));
        assert_eq!(net.open_circuits(), 0, "flap closed the circuit");
        assert!(!net.reachable(SiteId(0), SiteId(1)));
        net.charge_timeout(Ticks::millis(2));
        assert!(net.reachable(SiteId(0), SiteId(1)), "link restored");
    }

    #[test]
    fn one_directional_slow_link_inflates_only_that_direction() {
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(0).slow_link(
            SiteId(0),
            SiteId(1),
            8,
            Ticks::micros(200),
        ));
        let t0 = net.now();
        net.send(SiteId(0), SiteId(1), "x", 64).unwrap();
        let slow = net.now() - t0;
        let t1 = net.now();
        net.send(SiteId(1), SiteId(0), "x", 64).unwrap();
        let fast = net.now() - t1;
        assert!(
            slow > fast,
            "gray direction {slow:?} must cost more than clean reverse {fast:?}"
        );
        let stats = net.stats();
        assert_eq!(stats.link(SiteId(0), SiteId(1)).slowed, 1);
        assert_eq!(stats.link(SiteId(1), SiteId(0)).slowed, 0);
    }

    #[test]
    fn blocked_direction_drops_while_reverse_delivers() {
        // Asymmetric reachability: 0→1 silently loses everything, 1→0 is
        // untouched — the case the §5.1 transitive topology cannot express.
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(0).block_direction(SiteId(0), SiteId(1)));
        assert_eq!(net.send(SiteId(0), SiteId(1), "x", 8), Err(NetError::Dropped));
        assert!(net.send(SiteId(1), SiteId(0), "x", 8).is_ok());
        let stats = net.stats();
        assert_eq!(stats.link(SiteId(0), SiteId(1)).blocked, 1);
        assert_eq!(stats.link(SiteId(1), SiteId(0)).blocked, 0);
        assert_eq!(stats.link(SiteId(1), SiteId(0)).sends, 1);
    }

    #[test]
    fn blocked_reply_direction_aborts_the_circuit() {
        let net = Net::new(2);
        net.send(SiteId(0), SiteId(1), "req", 8).unwrap();
        net.install_faults(FaultPlan::new(0).block_direction(SiteId(1), SiteId(0)));
        assert_eq!(
            net.send_reply(SiteId(1), SiteId(0), "resp", 8),
            Err(NetError::ReplyLost)
        );
        assert_eq!(net.open_circuits(), 0);
    }

    #[test]
    fn health_monitor_quarantines_a_gray_site_via_send_outcomes() {
        let net = Net::new(3);
        net.enable_health(HealthPolicy::default());
        let gray = SiteId(2);
        net.install_faults(FaultPlan::new(0).block_direction(SiteId(0), gray));
        let policy = HealthPolicy::default();
        let need = policy.quarantine_score.div_ceil(policy.fault_penalty);
        for _ in 0..need {
            let _ = net.send(SiteId(0), gray, "x", 8);
        }
        assert!(net.quarantined(gray), "drops blamed on the destination");
        assert_eq!(net.site_health(gray), SiteHealth::Quarantined);
        assert!(!net.quarantined(SiteId(0)), "the sender is not blamed");
        // Quarantine and readmission leave an audit trail in obs notes.
        net.clear_faults();
        assert!(net.begin_probation(gray));
        assert!(net.quarantined(gray), "probation is still isolation");
        for _ in 0..policy.probation_probes {
            net.send(SiteId(0), gray, "probe", 8).unwrap();
        }
        assert!(!net.quarantined(gray), "clean probes readmit");
        assert_eq!(net.site_health(gray), SiteHealth::Healthy);
    }

    #[test]
    fn disabled_health_monitor_never_isolates() {
        let net = Net::new(2);
        net.install_faults(FaultPlan::new(0).default_spec(FaultSpec::drop_rate(1.0)));
        for _ in 0..64 {
            let _ = net.send(SiteId(0), SiteId(1), "x", 8);
        }
        assert!(!net.quarantined(SiteId(1)));
        assert_eq!(net.health_score(SiteId(1)), 0);
    }

    #[test]
    fn flapping_site_aborts_circuits_probabilistically() {
        let net = Net::new(2);
        net.enable_health(HealthPolicy::default());
        net.install_faults(FaultPlan::new(42).flap_site(SiteId(1), 1.0));
        assert_eq!(
            net.send(SiteId(0), SiteId(1), "x", 8),
            Err(NetError::CircuitClosed)
        );
        assert_eq!(net.stats().link(SiteId(0), SiteId(1)).fails, 1);
        assert!(net.health_score(SiteId(1)) > 0, "flap blamed on the flapper");
    }

    #[test]
    fn identical_seed_gives_identical_trace() {
        let run = || {
            let net = Net::new(3);
            net.set_tracing(true);
            net.install_faults(FaultPlan::new(99).default_spec(FaultSpec {
                drop: 0.3,
                duplicate: 0.1,
                delay_prob: 0.2,
                delay: Ticks::micros(150),
                circuit_abort: 0.0,
            }));
            for i in 0..40u32 {
                let _ = net.send(SiteId(i % 3), SiteId((i + 1) % 3), "x", 16 + i as usize);
            }
            net.take_trace()
        };
        assert_eq!(run(), run());
    }
}
