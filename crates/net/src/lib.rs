//! The simulated LOCUS network substrate.
//!
//! The original system ran on a 10 Mbit broadcast Ethernet with specialized
//! kernel-to-kernel protocols ("no acknowledgements, flow control or any
//! other underlying mechanism", §2.3.3 fn). This crate reproduces the
//! *properties* that matter to the paper's evaluation:
//!
//! * a reachability matrix with **enforced transitivity** (§5.1: the
//!   high-level protocols assume that if A talks to B and B to C then A
//!   talks to C; the low-level machinery guarantees it) — reachability is
//!   computed over connected components of live links;
//! * **virtual circuits** that deliver in order and are closed by partition
//!   changes, aborting ongoing activity (§5.1);
//! * a **virtual clock** and a latency model calibrated to a 1983 Ethernet,
//!   so experiment harnesses can report simulated elapsed time;
//! * per-message-type **statistics** and a **protocol trace** from which
//!   the Figure 1 / Figure 2 message sequences are regenerated.
//!
//! All state is behind interior mutability so a `&Net` can be threaded
//! through nested simulated remote procedure calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod clock;
pub mod latency;
pub mod stats;
pub mod topology;
pub mod trace;

use std::cell::RefCell;

use locus_types::{SiteId, Ticks};

pub use circuit::CircuitTable;
pub use clock::VirtualClock;
pub use latency::LatencyModel;
pub use stats::NetStats;
pub use topology::Topology;
pub use trace::{Trace, TraceEvent};

/// Errors surfaced by the network layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// Destination site is crashed or in a different partition.
    Unreachable,
    /// The virtual circuit to the destination was closed mid-conversation
    /// (partition change while an operation was in flight, §5.1).
    CircuitClosed,
    /// A site attempted to send a network message to itself; local service
    /// must be performed by direct procedure call (§2.3.3).
    SelfSend,
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NetError::Unreachable => "destination unreachable",
            NetError::CircuitClosed => "virtual circuit closed",
            NetError::SelfSend => "network send to self",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

/// The simulated network: topology + circuits + clock + accounting.
///
/// # Examples
///
/// ```
/// use locus_net::Net;
/// use locus_types::SiteId;
///
/// let net = Net::new(3);
/// net.send(SiteId(0), SiteId(1), "OPEN req", 64).unwrap();
/// net.partition(&[vec![SiteId(0)], vec![SiteId(1), SiteId(2)]]);
/// assert!(net.send(SiteId(0), SiteId(1), "OPEN req", 64).is_err());
/// ```
pub struct Net {
    inner: RefCell<Inner>,
}

struct Inner {
    topology: Topology,
    circuits: CircuitTable,
    clock: VirtualClock,
    latency: LatencyModel,
    stats: NetStats,
    trace: Trace,
}

impl Net {
    /// Creates a fully connected network of `n` sites with the default
    /// latency model.
    pub fn new(n: usize) -> Self {
        Net::with_latency(n, LatencyModel::ethernet_1983())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(n: usize, latency: LatencyModel) -> Self {
        Net {
            inner: RefCell::new(Inner {
                topology: Topology::new(n),
                circuits: CircuitTable::new(),
                clock: VirtualClock::new(),
                latency,
                stats: NetStats::new(),
                trace: Trace::new(),
            }),
        }
    }

    /// Number of sites (live or not).
    pub fn site_count(&self) -> usize {
        self.inner.borrow().topology.site_count()
    }

    /// Sends one message of `bytes` payload from `from` to `to`.
    ///
    /// On success the virtual clock advances by the message latency, the
    /// per-kind statistics are updated and a trace event is recorded. A
    /// failed send (unreachable destination) closes any circuit between the
    /// pair and is counted separately; timeout accounting is the caller's
    /// policy.
    pub fn send(
        &self,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        bytes: usize,
    ) -> Result<(), NetError> {
        let mut g = self.inner.borrow_mut();
        if from == to {
            return Err(NetError::SelfSend);
        }
        if !g.topology.can_communicate(from, to) {
            g.circuits.close_pair(from, to);
            g.stats.record_failure(kind);
            return Err(NetError::Unreachable);
        }
        g.circuits.ensure_open(from, to);
        let cost = g.latency.message_cost(bytes);
        g.clock.advance(cost);
        let now = g.clock.now();
        g.stats.record(kind, bytes);
        g.trace.record(TraceEvent {
            at: now,
            from,
            to,
            kind,
            bytes,
        });
        Ok(())
    }

    /// Accounts local (same-site) kernel work of `cost` ticks; used by the
    /// simulated kernels so CPU time shows up on the same clock as wire
    /// time.
    pub fn charge_cpu(&self, cost: Ticks) {
        self.inner.borrow_mut().clock.advance(cost);
    }

    /// Current virtual time.
    pub fn now(&self) -> Ticks {
        self.inner.borrow().clock.now()
    }

    /// Whether `from` can currently communicate with `to` (both up, same
    /// connected component; a site always reaches itself while up).
    pub fn reachable(&self, from: SiteId, to: SiteId) -> bool {
        self.inner.borrow().topology.can_communicate(from, to) || (from == to && self.is_up(from))
    }

    /// Whether the site is up.
    pub fn is_up(&self, site: SiteId) -> bool {
        self.inner.borrow().topology.is_up(site)
    }

    /// All sites currently in `site`'s partition (including itself), in
    /// site order. Empty if the site is down.
    pub fn partition_of(&self, site: SiteId) -> Vec<SiteId> {
        self.inner.borrow().topology.partition_of(site)
    }

    /// The current partitions (connected components of live sites).
    pub fn partitions(&self) -> Vec<Vec<SiteId>> {
        self.inner.borrow().topology.components()
    }

    /// Splits the network into the given groups: links inside a group are
    /// restored, links across groups are cut. Circuits across groups close.
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_partition(groups);
        let topo = &g.topology;
        let mut to_close = Vec::new();
        g.circuits.for_each_open(|a, b| {
            if !topo.can_communicate(a, b) {
                to_close.push((a, b));
            }
        });
        for (a, b) in to_close {
            g.circuits.close_pair(a, b);
            g.stats.circuits_closed += 1;
        }
    }

    /// Restores full connectivity among all live sites.
    pub fn heal(&self) {
        self.inner.borrow_mut().topology.heal();
    }

    /// Cuts the single link between two sites (circuits between them close).
    /// Note reachability is transitive, so the pair may still communicate
    /// through a third site.
    pub fn cut_link(&self, a: SiteId, b: SiteId) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_link(a, b, false);
        g.circuits.close_pair(a, b);
        g.stats.circuits_closed += 1;
    }

    /// Restores the link between two sites.
    pub fn restore_link(&self, a: SiteId, b: SiteId) {
        self.inner.borrow_mut().topology.set_link(a, b, true);
    }

    /// Crashes a site: all its circuits close and nothing reaches it.
    pub fn crash(&self, site: SiteId) {
        let mut g = self.inner.borrow_mut();
        g.topology.set_up(site, false);
        let closed = g.circuits.close_involving(site);
        g.stats.circuits_closed += closed;
    }

    /// Brings a crashed site back up (with its previous links intact).
    pub fn revive(&self, site: SiteId) {
        self.inner.borrow_mut().topology.set_up(site, true);
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats.clone()
    }

    /// Resets message statistics (the topology, clock and trace persist).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = NetStats::new();
    }

    /// Enables or disables trace recording.
    pub fn set_tracing(&self, on: bool) {
        self.inner.borrow_mut().trace.set_enabled(on);
    }

    /// Drains and returns the recorded trace events.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.inner.borrow_mut().trace.take()
    }

    /// The latency model in force.
    pub fn latency(&self) -> LatencyModel {
        self.inner.borrow().latency
    }

    /// Replaces the latency model (used by the layering-ablation bench).
    pub fn set_latency(&self, latency: LatencyModel) {
        self.inner.borrow_mut().latency = latency;
    }

    /// Charges a timeout delay to the virtual clock (a poll that never got
    /// an answer still costs wall-clock time, §5.5).
    pub fn charge_timeout(&self, span: Ticks) {
        self.inner.borrow_mut().clock.advance(span);
    }

    /// Number of currently open virtual circuits.
    pub fn open_circuits(&self) -> usize {
        self.inner.borrow().circuits.open_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_clock_and_counts() {
        let net = Net::new(2);
        let t0 = net.now();
        net.send(SiteId(0), SiteId(1), "READ req", 32).unwrap();
        assert!(net.now() > t0);
        assert_eq!(net.stats().sends("READ req"), 1);
    }

    #[test]
    fn self_send_is_rejected() {
        let net = Net::new(2);
        assert_eq!(
            net.send(SiteId(0), SiteId(0), "x", 0),
            Err(NetError::SelfSend)
        );
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let net = Net::new(4);
        net.partition(&[vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]]);
        assert!(net.send(SiteId(0), SiteId(1), "x", 1).is_ok());
        assert_eq!(
            net.send(SiteId(1), SiteId(2), "x", 1),
            Err(NetError::Unreachable)
        );
        net.heal();
        assert!(net.send(SiteId(1), SiteId(2), "x", 1).is_ok());
    }

    #[test]
    fn transitivity_survives_single_link_cut() {
        // §5.4: a single communications failure must not fragment the
        // network — sites 0 and 1 remain mutually reachable through 2.
        let net = Net::new(3);
        net.cut_link(SiteId(0), SiteId(1));
        assert!(net.reachable(SiteId(0), SiteId(1)));
        assert_eq!(net.partitions().len(), 1);
    }

    #[test]
    fn crash_removes_site_from_partition() {
        let net = Net::new(3);
        net.crash(SiteId(2));
        assert!(!net.reachable(SiteId(0), SiteId(2)));
        assert_eq!(net.partition_of(SiteId(0)), vec![SiteId(0), SiteId(1)]);
        assert!(net.partition_of(SiteId(2)).is_empty());
        net.revive(SiteId(2));
        assert!(net.reachable(SiteId(0), SiteId(2)));
    }

    #[test]
    fn failed_send_closes_circuit_and_is_counted() {
        let net = Net::new(2);
        net.send(SiteId(0), SiteId(1), "x", 1).unwrap();
        assert_eq!(net.open_circuits(), 1);
        net.crash(SiteId(1));
        assert_eq!(net.open_circuits(), 0);
        assert!(net.send(SiteId(0), SiteId(1), "x", 1).is_err());
        assert_eq!(net.stats().failures("x"), 1);
    }

    #[test]
    fn trace_records_sequence() {
        let net = Net::new(3);
        net.set_tracing(true);
        net.send(SiteId(0), SiteId(1), "OPEN req", 10).unwrap();
        net.send(SiteId(1), SiteId(2), "SS poll", 10).unwrap();
        let tr = net.take_trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].kind, "OPEN req");
        assert!(tr[0].at < tr[1].at);
    }

    #[test]
    fn reachability_requires_both_sites_up() {
        let net = Net::new(2);
        net.crash(SiteId(0));
        assert!(!net.reachable(SiteId(0), SiteId(1)));
        assert!(!net.reachable(SiteId(0), SiteId(0)));
        assert!(net.reachable(SiteId(1), SiteId(1)));
    }
}
