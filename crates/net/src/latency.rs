//! Message latency model.
//!
//! The paper stresses that LOCUS owes much of its performance to
//! *specialized* kernel-to-kernel protocols: "Because multilayered support
//! and error handling, such as suggested by the ISO standard, is not
//! present, much higher performance has been achieved" (§2.3.3 fn). The
//! model therefore separates the fixed per-message protocol-processing cost
//! (the knob the layering ablation turns) from the wire cost.

use locus_types::Ticks;

/// Per-message cost model: `fixed + bytes / bytes_per_tick`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-message cost: protocol processing at both ends plus
    /// propagation. This is what a layered protocol stack inflates.
    pub fixed: Ticks,
    /// Wire throughput in bytes per tick (bytes per microsecond).
    pub bytes_per_tick: u64,
}

impl LatencyModel {
    /// Calibrated to the paper's testbed: 10 Mbit/s Ethernet (1.25
    /// bytes/us) with a ~1 ms specialized-protocol processing cost per
    /// message (consistent with [GOLD 83]-era kernel path lengths on a
    /// VAX-11/750).
    pub const fn ethernet_1983() -> Self {
        LatencyModel {
            fixed: Ticks::micros(1_000),
            bytes_per_tick: 1,
        }
    }

    /// The same wire with an ISO-style layered protocol stack: each message
    /// pays several additional layers of processing (used only by the
    /// layering ablation, DESIGN.md §4.4).
    pub const fn layered_stack() -> Self {
        LatencyModel {
            fixed: Ticks::micros(5_000),
            bytes_per_tick: 1,
        }
    }

    /// A 1 Mbit ring, the original PDP-11 development network.
    pub const fn ring_1mbit() -> Self {
        LatencyModel {
            fixed: Ticks::micros(1_500),
            bytes_per_tick: 8, // one byte per 8 us
        }
    }

    /// Cost of one message carrying `bytes` of payload.
    pub fn message_cost(&self, bytes: usize) -> Ticks {
        let wire = if self.bytes_per_tick <= 1 {
            // One or fewer bytes per tick: multiply.
            Ticks::micros(bytes as u64 * self.bytes_per_tick.max(1))
        } else {
            Ticks::micros(bytes as u64 * self.bytes_per_tick)
        };
        self.fixed + wire
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ethernet_1983()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_size() {
        let m = LatencyModel::ethernet_1983();
        let small = m.message_cost(64);
        let page = m.message_cost(4096);
        assert!(page > small);
        assert_eq!(small, Ticks::micros(1_064));
    }

    #[test]
    fn layered_stack_is_slower() {
        let fast = LatencyModel::ethernet_1983();
        let slow = LatencyModel::layered_stack();
        assert!(slow.message_cost(64) > fast.message_cost(64));
    }

    #[test]
    fn ring_is_slower_per_byte() {
        let ring = LatencyModel::ring_1mbit();
        let ether = LatencyModel::ethernet_1983();
        assert!(ring.message_cost(4096) > ether.message_cost(4096));
    }
}
