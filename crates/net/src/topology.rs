//! Site liveness, links, and transitive reachability.
//!
//! §5.1: "The high-level protocols of LOCUS assume that the underlying
//! network is fully connected … The low-level protocols enforce that
//! network transitivity." We model the physical layer as an undirected
//! link matrix over live sites and define *communication* over connected
//! components, which is exactly the transitive closure the low level
//! provides (routing through intermediate sites).

use locus_types::SiteId;

/// Liveness and link state for `n` sites.
#[derive(Clone, Debug)]
pub struct Topology {
    up: Vec<bool>,
    /// Symmetric adjacency matrix (self-links unused).
    links: Vec<Vec<bool>>,
}

impl Topology {
    /// Fully connected topology of `n` live sites.
    pub fn new(n: usize) -> Self {
        Topology {
            up: vec![true; n],
            links: vec![vec![true; n]; n],
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.up.len()
    }

    /// Whether the site is up.
    pub fn is_up(&self, s: SiteId) -> bool {
        self.up.get(s.index()).copied().unwrap_or(false)
    }

    /// Marks a site up or down.
    pub fn set_up(&mut self, s: SiteId, up: bool) {
        if let Some(slot) = self.up.get_mut(s.index()) {
            *slot = up;
        }
    }

    /// Sets the physical link between two sites.
    pub fn set_link(&mut self, a: SiteId, b: SiteId, connected: bool) {
        let (i, j) = (a.index(), b.index());
        if i < self.links.len() && j < self.links.len() && i != j {
            self.links[i][j] = connected;
            self.links[j][i] = connected;
        }
    }

    /// Restores all links and leaves liveness unchanged.
    pub fn heal(&mut self) {
        let n = self.site_count();
        for i in 0..n {
            for j in 0..n {
                self.links[i][j] = true;
            }
        }
    }

    /// Cuts the network into the given groups: intra-group links restored,
    /// inter-group links cut. Sites not mentioned keep their links to each
    /// other but lose links to all mentioned sites outside their group.
    pub fn set_partition(&mut self, groups: &[Vec<SiteId>]) {
        let n = self.site_count();
        let mut group_of = vec![usize::MAX; n];
        for (gi, group) in groups.iter().enumerate() {
            for s in group {
                if s.index() < n {
                    group_of[s.index()] = gi;
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let connected = group_of[i] == group_of[j];
                self.links[i][j] = connected;
                self.links[j][i] = connected;
            }
        }
    }

    /// Whether two sites can communicate: both up and in the same
    /// connected component of the live-link graph (transitivity). A site
    /// always communicates with itself while it is up (local service is a
    /// procedure call, §2.3.3) and never while down.
    pub fn can_communicate(&self, a: SiteId, b: SiteId) -> bool {
        if !self.is_up(a) || !self.is_up(b) {
            return false;
        }
        a == b || self.component_of(a).contains(&b)
    }

    /// All live sites reachable from `s` (including `s`), in site order.
    /// Empty if `s` is down.
    pub fn partition_of(&self, s: SiteId) -> Vec<SiteId> {
        if !self.is_up(s) {
            return Vec::new();
        }
        self.component_of(s)
    }

    /// The connected components of live sites, each sorted, ordered by
    /// their smallest member.
    pub fn components(&self) -> Vec<Vec<SiteId>> {
        let n = self.site_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for i in 0..n {
            if self.up[i] && !seen[i] {
                let comp = self.component_of(SiteId(i as u32));
                for s in &comp {
                    seen[s.index()] = true;
                }
                out.push(comp);
            }
        }
        out
    }

    fn component_of(&self, start: SiteId) -> Vec<SiteId> {
        let n = self.site_count();
        let mut seen = vec![false; n];
        let mut stack = vec![start.index()];
        seen[start.index()] = true;
        while let Some(i) = stack.pop() {
            for (j, seen_j) in seen.iter_mut().enumerate().take(n) {
                if !*seen_j && j != i && self.up[j] && self.links[i][j] {
                    *seen_j = true;
                    stack.push(j);
                }
            }
        }
        (0..n)
            .filter(|&i| seen[i])
            .map(|i| SiteId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn fully_connected_is_one_component() {
        let t = Topology::new(4);
        assert_eq!(t.components().len(), 1);
        assert!(t.can_communicate(s(0), s(3)));
    }

    #[test]
    fn self_communication_tracks_liveness() {
        let mut t = Topology::new(2);
        assert!(t.can_communicate(s(0), s(0)));
        t.set_up(s(0), false);
        assert!(!t.can_communicate(s(0), s(0)));
        t.set_up(s(0), true);
        assert!(t.can_communicate(s(0), s(0)));
    }

    #[test]
    fn routing_through_intermediate_site() {
        let mut t = Topology::new(3);
        t.set_link(s(0), s(1), false);
        // 0-2 and 1-2 remain: transitivity keeps 0 and 1 communicating.
        assert!(t.can_communicate(s(0), s(1)));
    }

    #[test]
    fn down_intermediate_breaks_the_route() {
        let mut t = Topology::new(3);
        t.set_link(s(0), s(1), false);
        t.set_up(s(2), false);
        assert!(!t.can_communicate(s(0), s(1)));
        assert_eq!(t.components(), vec![vec![s(0)], vec![s(1)]]);
    }

    #[test]
    fn set_partition_creates_disjoint_groups() {
        let mut t = Topology::new(5);
        t.set_partition(&[vec![s(0), s(1), s(2)], vec![s(3), s(4)]]);
        assert!(t.can_communicate(s(0), s(2)));
        assert!(t.can_communicate(s(3), s(4)));
        assert!(!t.can_communicate(s(2), s(3)));
        assert_eq!(t.components().len(), 2);
    }

    #[test]
    fn partition_of_down_site_is_empty() {
        let mut t = Topology::new(2);
        t.set_up(s(0), false);
        assert!(t.partition_of(s(0)).is_empty());
        assert_eq!(t.partition_of(s(1)), vec![s(1)]);
    }

    #[test]
    fn heal_restores_links_not_liveness() {
        let mut t = Topology::new(3);
        t.set_partition(&[vec![s(0)], vec![s(1), s(2)]]);
        t.set_up(s(2), false);
        t.heal();
        assert!(t.can_communicate(s(0), s(1)));
        assert!(!t.can_communicate(s(0), s(2)));
    }
}
