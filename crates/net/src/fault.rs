//! Deterministic fault injection for the simulated network.
//!
//! The paper's resilience story is driven by *unreliable* machinery
//! underneath reliable-looking protocols: "no acknowledgements, flow
//! control or any other underlying mechanism" is provided by the network
//! (§2.3.3 fn), and "timeouts drive the reconfiguration protocols"
//! (§5.5). This module supplies the unreliability: a seeded pseudo-random
//! plan of message drops, duplicates and delays, transient link flaps and
//! crash/revive events keyed to the virtual clock.
//!
//! Everything is deterministic: each **source site** owns one [`SimRng`]
//! stream (an xorshift64*), consumed in that site's send order, so the
//! same seed, plan and per-site operation sequence reproduce
//! byte-identical behaviour — statistics, traces and all. That guarantee
//! is what makes the chaos harness in `locus-fs` debuggable: a failing
//! schedule is re-run from its seed alone. Sharding the stream by source
//! site (rather than one global stream in total send order) is what lets
//! the parallel-epoch engine run disjoint site groups concurrently
//! without perturbing each other's rolls; the derivation rule is
//! documented on [`site_stream_seed`].

use std::collections::BTreeMap;

use locus_types::{SiteId, Ticks};

/// The workspace's seeded pseudo-random generator (xorshift64*).
///
/// Used by the fault injector, the bench workload generators and the
/// stress tests in place of an external `rand` dependency. Not
/// cryptographic; statistically plenty for simulation.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator for the given seed (any value, including 0, is fine).
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[range.start, range.end)`.
    pub fn gen_range<T: RangeSample>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Integer types [`SimRng::gen_range`] can sample.
pub trait RangeSample: Sized {
    /// Samples uniformly from the half-open range.
    fn sample(rng: &mut SimRng, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut SimRng, range: core::ops::Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u128;
                assert!(span > 0, "gen_range over an empty range");
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Per-message fault probabilities.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability the message is lost in transit.
    pub drop: f64,
    /// Probability the message is delivered twice (wire-level duplicate).
    pub duplicate: f64,
    /// Probability the message is delayed by [`FaultSpec::delay`].
    pub delay_prob: f64,
    /// Extra latency charged when a delay fires.
    pub delay: Ticks,
    /// Probability the virtual circuit to the destination fails at the
    /// moment of the send: the circuit closes and the sender observes
    /// [`crate::NetError::CircuitClosed`] without the message reaching
    /// the wire (§5.1 mid-conversation circuit failure).
    pub circuit_abort: f64,
}

impl FaultSpec {
    /// A spec that only drops, with probability `p`.
    pub fn drop_rate(p: f64) -> Self {
        FaultSpec {
            drop: p,
            ..Default::default()
        }
    }
}

/// Deterministic *gray* behaviour of one **directed** link.
///
/// Unlike the probabilistic [`FaultSpec`], a gray spec is a stable
/// property of a direction: every message sent `from -> to` is slowed
/// (latency inflation, not a cut) or silently blocked while the opposite
/// direction keeps working. This is the failure mode partition detection
/// cannot see — the link is "up", it is just *wrong* — and what the
/// health monitor ([`crate::health`]) exists to catch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraySpec {
    /// Multiplies the base transmission latency (0 and 1 both mean
    /// "unchanged").
    pub slow_factor: u32,
    /// Extra latency added after the multiplication.
    pub slow_extra: Ticks,
    /// Every message in this direction is silently lost (asymmetric
    /// reachability: A reaches B but B's messages to A vanish).
    pub blocked: bool,
}

impl GraySpec {
    /// A slow-link spec: latency is multiplied by `factor` then `extra`
    /// is added.
    pub fn slow(factor: u32, extra: Ticks) -> Self {
        GraySpec {
            slow_factor: factor,
            slow_extra: extra,
            blocked: false,
        }
    }

    /// A one-directional block: the direction delivers nothing.
    pub fn one_way_block() -> Self {
        GraySpec {
            blocked: true,
            ..Default::default()
        }
    }

    /// Whether the spec inflates latency.
    pub fn is_slow(&self) -> bool {
        self.slow_factor > 1 || self.slow_extra > Ticks::ZERO
    }

    /// Applies the inflation to a base transmission cost.
    pub fn inflate(&self, base: Ticks) -> Ticks {
        let mult = self.slow_factor.max(1) as u64;
        Ticks::micros(base.as_micros().saturating_mul(mult)) + self.slow_extra
    }
}

/// A topology change scheduled against the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Site crashes (volatile state lost, circuits close).
    Crash(SiteId),
    /// Crashed site comes back up.
    Revive(SiteId),
    /// The physical link between two sites goes down.
    LinkDown(SiteId, SiteId),
    /// The physical link comes back.
    LinkUp(SiteId, SiteId),
}

/// One scheduled fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Virtual time at or after which the action fires.
    pub at: Ticks,
    /// What happens.
    pub action: FaultAction,
}

/// A complete, seeded fault-injection plan.
///
/// Precedence for probabilistic faults: a per-message-kind spec overrides
/// a per-link spec, which overrides the default spec. Scheduled events
/// fire in `at` order as the virtual clock passes them.
///
/// # Examples
///
/// ```
/// use locus_net::{FaultPlan, FaultSpec};
/// use locus_types::{SiteId, Ticks};
///
/// let plan = FaultPlan::new(42)
///     .default_spec(FaultSpec::drop_rate(0.1))
///     .kind_spec("COMMIT req", FaultSpec::drop_rate(0.5))
///     .link_flap(SiteId(0), SiteId(1), Ticks::millis(5), Ticks::millis(9));
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    default: FaultSpec,
    per_link: BTreeMap<(SiteId, SiteId), FaultSpec>,
    per_kind: BTreeMap<&'static str, FaultSpec>,
    /// Gray behaviour keyed by **ordered** `(from, to)` — a gray fault
    /// is one-directional by definition.
    per_gray: BTreeMap<(SiteId, SiteId), GraySpec>,
    /// Per-site flap probability: any message touching the site fails
    /// with a mid-conversation circuit abort at this rate.
    flap: BTreeMap<SiteId, f64>,
    schedule: Vec<ScheduledFault>,
}

fn link_key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the default per-message fault spec.
    pub fn default_spec(mut self, spec: FaultSpec) -> Self {
        self.default = spec;
        self
    }

    /// Overrides the spec for one (unordered) link.
    pub fn link_spec(mut self, a: SiteId, b: SiteId, spec: FaultSpec) -> Self {
        self.per_link.insert(link_key(a, b), spec);
        self
    }

    /// Overrides the spec for one message kind (takes precedence over
    /// link specs).
    pub fn kind_spec(mut self, kind: &'static str, spec: FaultSpec) -> Self {
        self.per_kind.insert(kind, spec);
        self
    }

    /// Installs a gray spec for the **directed** link `from -> to`; the
    /// opposite direction is unaffected.
    pub fn gray_link(mut self, from: SiteId, to: SiteId, spec: GraySpec) -> Self {
        self.per_gray.insert((from, to), spec);
        self
    }

    /// Convenience: one-directional slow link — every `from -> to`
    /// message's latency is multiplied by `factor` then `extra` is added.
    pub fn slow_link(self, from: SiteId, to: SiteId, factor: u32, extra: Ticks) -> Self {
        self.gray_link(from, to, GraySpec::slow(factor, extra))
    }

    /// Convenience: asymmetric reachability — `from -> to` delivers
    /// nothing while `to -> from` keeps working.
    pub fn block_direction(self, from: SiteId, to: SiteId) -> Self {
        self.gray_link(from, to, GraySpec::one_way_block())
    }

    /// Marks a site as probabilistically *flapping*: every message to or
    /// from it suffers a mid-conversation circuit abort with probability
    /// `p` (per message, rolled on the plan's deterministic RNG stream).
    pub fn flap_site(mut self, site: SiteId, p: f64) -> Self {
        self.flap.insert(site, p);
        self
    }

    /// The gray spec in force for the directed link `from -> to`, if any.
    pub fn gray_for(&self, from: SiteId, to: SiteId) -> Option<GraySpec> {
        self.per_gray.get(&(from, to)).copied()
    }

    /// The flap probability of one site (0.0 if not flapping).
    pub fn flap_for(&self, site: SiteId) -> f64 {
        self.flap.get(&site).copied().unwrap_or(0.0)
    }

    /// Schedules a raw fault action.
    pub fn schedule(mut self, at: Ticks, action: FaultAction) -> Self {
        self.schedule.push(ScheduledFault { at, action });
        self.schedule.sort_by_key(|ev| ev.at);
        self
    }

    /// Schedules a crash at `at` and a revive at `until`.
    pub fn crash_window(self, site: SiteId, at: Ticks, until: Ticks) -> Self {
        self.schedule(at, FaultAction::Crash(site))
            .schedule(until, FaultAction::Revive(site))
    }

    /// Schedules a transient link flap: down at `at`, back at `until`.
    pub fn link_flap(self, a: SiteId, b: SiteId, at: Ticks, until: Ticks) -> Self {
        self.schedule(at, FaultAction::LinkDown(a, b))
            .schedule(until, FaultAction::LinkUp(a, b))
    }

    /// The effective spec for one message (kind > link > default).
    fn spec_for(&self, from: SiteId, to: SiteId, kind: &str) -> FaultSpec {
        if let Some(s) = self.per_kind.get(kind) {
            return *s;
        }
        if let Some(s) = self.per_link.get(&link_key(from, to)) {
            return *s;
        }
        self.default
    }
}

/// The injector's verdict on one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Deliver, plus a wire-level duplicate.
    Duplicate,
    /// Deliver after extra latency.
    Delay(Ticks),
    /// Lost in transit.
    Drop,
    /// The virtual circuit to the destination fails before transmission;
    /// the sender observes `CircuitClosed` (§5.1).
    CircuitAbort,
}

/// The golden-ratio multiplier shared with [`SimRng::seed_from_u64`].
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed of one source site's RNG stream.
///
/// **Derivation rule** (documented because cross-engine byte-identity
/// depends on it): site `s` draws its fault rolls from
/// `SimRng::seed_from_u64(plan_seed ^ GOLDEN · (s + 1))` where `GOLDEN =
/// 0x9E37_79B9_7F4A_7C15`, the same odd multiplier `seed_from_u64`
/// itself uses. Each site's stream depends only on the plan seed and the
/// site id — never on other sites' traffic — so any interleaving of
/// sends from different sites consumes the same rolls per site, which is
/// exactly the property the parallel-epoch engine's shards rely on.
pub fn site_stream_seed(plan_seed: u64, site: SiteId) -> u64 {
    plan_seed ^ GOLDEN.wrapping_mul(u64::from(site.0) + 1)
}

/// Live injection state: the plan plus its per-source-site RNG streams
/// and schedule cursor.
#[derive(Clone, Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// One RNG stream per **source** site, created on first use from
    /// [`site_stream_seed`].
    streams: BTreeMap<SiteId, SimRng>,
    /// Index of the next unfired scheduled event.
    cursor: usize,
}

impl FaultInjector {
    /// An injector that never injects (the default network).
    pub(crate) fn inert() -> Self {
        FaultInjector::new(FaultPlan::default())
    }

    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            streams: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// Whether scheduled topology events are still pending. The parallel
    /// engine refuses to run an epoch concurrently while any are unfired:
    /// a scheduled crash reads the absolute clock, which shards advance
    /// independently.
    pub(crate) fn has_unfired_events(&self) -> bool {
        self.cursor < self.plan.schedule.len()
    }

    /// Splits off an injector for a site-shard: the shard takes ownership
    /// of the member sites' RNG streams (parent keeps the rest), shares
    /// the plan, and carries the schedule cursor for due-event checks.
    pub(crate) fn split_sites(&mut self, sites: &std::collections::BTreeSet<SiteId>) -> Self {
        let mut streams = BTreeMap::new();
        for &s in sites {
            if let Some(rng) = self.streams.remove(&s) {
                streams.insert(s, rng);
            }
        }
        FaultInjector {
            plan: self.plan.clone(),
            streams,
            cursor: self.cursor,
        }
    }

    /// Re-absorbs a shard's streams after an epoch barrier.
    ///
    /// # Panics
    ///
    /// Panics if the shard fired scheduled events (the engine must have
    /// serialized such epochs).
    pub(crate) fn absorb(&mut self, shard: FaultInjector) {
        assert_eq!(
            shard.cursor, self.cursor,
            "shard fired scheduled fault events during a parallel epoch"
        );
        self.streams.extend(shard.streams);
    }

    /// The stream of one source site, created on demand.
    fn stream(&mut self, site: SiteId) -> &mut SimRng {
        let seed = site_stream_seed(self.plan.seed, site);
        self.streams
            .entry(site)
            .or_insert_with(|| SimRng::seed_from_u64(seed))
    }

    /// Pops every scheduled event due at or before `now`.
    pub(crate) fn due_events(&mut self, now: Ticks) -> Vec<FaultAction> {
        let mut out = Vec::new();
        while let Some(ev) = self.plan.schedule.get(self.cursor) {
            if ev.at > now {
                break;
            }
            out.push(ev.action);
            self.cursor += 1;
        }
        out
    }

    /// Rolls the dice for one message, consuming the **source site's**
    /// stream in a fixed order (drop, then duplicate, then delay) so
    /// decisions are reproducible per seed regardless of which
    /// probabilities are zero.
    pub(crate) fn judge(&mut self, from: SiteId, to: SiteId, kind: &str) -> Verdict {
        let spec = self.plan.spec_for(from, to, kind);
        // Combined probability that either endpoint flaps on this message.
        let flap_p = {
            let (pf, pt) = (self.plan.flap_for(from), self.plan.flap_for(to));
            1.0 - (1.0 - pf) * (1.0 - pt)
        };
        let spec_active = spec.drop != 0.0
            || spec.duplicate != 0.0
            || spec.delay_prob != 0.0
            || spec.circuit_abort != 0.0;
        if !spec_active && flap_p == 0.0 {
            return Verdict::Deliver;
        }
        let rng = self.stream(from);
        let (d, dup, del) = if spec_active {
            (rng.gen_f64(), rng.gen_f64(), rng.gen_f64())
        } else {
            (1.0, 1.0, 1.0)
        };
        // The abort roll is consumed only when the spec can abort, and
        // after the original three rolls, so plans without circuit aborts
        // reproduce the exact RNG stream (and traces) of earlier versions.
        let abort = if spec.circuit_abort > 0.0 {
            rng.gen_f64()
        } else {
            1.0
        };
        // The flap roll follows the same stream-preserving discipline:
        // consumed only when a flapping site is involved, and after every
        // pre-existing roll, so plans without flapping sites reproduce
        // the exact RNG stream of earlier versions.
        let flap = if flap_p > 0.0 { rng.gen_f64() } else { 1.0 };
        if abort < spec.circuit_abort || flap < flap_p {
            Verdict::CircuitAbort
        } else if d < spec.drop {
            Verdict::Drop
        } else if dup < spec.duplicate {
            Verdict::Duplicate
        } else if del < spec.delay_prob {
            Verdict::Delay(spec.delay)
        } else {
            Verdict::Deliver
        }
    }

    /// The gray spec for the directed link `from -> to`, if any.
    pub(crate) fn gray_for(&self, from: SiteId, to: SiteId) -> Option<GraySpec> {
        self.plan.gray_for(from, to)
    }
}

/// Bounded-retry, exponential-backoff policy for request messages.
///
/// A retry is the *caller's* reaction to a [`crate::NetError::Dropped`]
/// send: each failed attempt charges `backoff(attempt)` to the virtual
/// clock (the §5.5 "timeouts cost wall-clock time" accounting) before the
/// resend. Replies are never retried — a lost reply closes the virtual
/// circuit and the conversation aborts (§5.1); recovery is the higher
/// protocol's job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt.
    pub base_backoff: Ticks,
    /// Backoff multiplier per subsequent attempt.
    pub multiplier: u32,
    /// Upper bound on *consecutive* closed-circuit reopen-retries within
    /// one engine call (reopening spends no attempt, so a flapping
    /// circuit needs its own bound). Defaults to
    /// [`MAX_CONSECUTIVE_REOPENS`](crate::MAX_CONSECUTIVE_REOPENS); chaos
    /// suites tighten or loosen it per scenario.
    pub max_reopens: u32,
}

impl Default for RetryPolicy {
    /// Four attempts, 2 ms base, doubling: 2 ms, 4 ms, 8 ms of virtual
    /// time charged across a worst-case burst of three retries.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Ticks::millis(2),
            multiplier: 2,
            max_reopens: crate::rpc::MAX_CONSECUTIVE_REOPENS,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the reopen bound keeps its default —
    /// a reopen is not a retry).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Ticks::ZERO,
            multiplier: 1,
            max_reopens: crate::rpc::MAX_CONSECUTIVE_REOPENS,
        }
    }

    /// The backoff charged after failed attempt number `attempt`
    /// (0-based).
    pub fn backoff(&self, attempt: u32) -> Ticks {
        let mut t = self.base_backoff;
        for _ in 0..attempt {
            t = Ticks::micros(t.as_micros().saturating_mul(self.multiplier as u64));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn spec_precedence_kind_over_link_over_default() {
        let plan = FaultPlan::new(0)
            .default_spec(FaultSpec::drop_rate(0.1))
            .link_spec(SiteId(1), SiteId(0), FaultSpec::drop_rate(0.2))
            .kind_spec("OPEN req", FaultSpec::drop_rate(0.3));
        assert_eq!(plan.spec_for(SiteId(2), SiteId(3), "READ req").drop, 0.1);
        // Link specs are unordered.
        assert_eq!(plan.spec_for(SiteId(0), SiteId(1), "READ req").drop, 0.2);
        assert_eq!(plan.spec_for(SiteId(0), SiteId(1), "OPEN req").drop, 0.3);
    }

    #[test]
    fn schedule_fires_in_time_order() {
        let plan = FaultPlan::new(0)
            .schedule(Ticks::micros(30), FaultAction::Revive(SiteId(1)))
            .schedule(Ticks::micros(10), FaultAction::Crash(SiteId(1)));
        let mut inj = FaultInjector::new(plan);
        assert!(inj.due_events(Ticks::micros(5)).is_empty());
        assert_eq!(
            inj.due_events(Ticks::micros(10)),
            vec![FaultAction::Crash(SiteId(1))]
        );
        assert_eq!(
            inj.due_events(Ticks::micros(100)),
            vec![FaultAction::Revive(SiteId(1))]
        );
        assert!(inj.due_events(Ticks::micros(200)).is_empty());
    }

    #[test]
    fn drop_rate_one_always_drops() {
        let plan = FaultPlan::new(3).default_spec(FaultSpec::drop_rate(1.0));
        let mut inj = FaultInjector::new(plan);
        for _ in 0..10 {
            assert_eq!(inj.judge(SiteId(0), SiteId(1), "x"), Verdict::Drop);
        }
    }

    #[test]
    fn circuit_abort_rate_one_always_aborts() {
        let plan = FaultPlan::new(3).default_spec(FaultSpec {
            circuit_abort: 1.0,
            ..Default::default()
        });
        let mut inj = FaultInjector::new(plan);
        for _ in 0..10 {
            assert_eq!(inj.judge(SiteId(0), SiteId(1), "x"), Verdict::CircuitAbort);
        }
    }

    #[test]
    fn inert_injector_consumes_no_randomness() {
        let mut a = FaultInjector::inert();
        assert_eq!(a.judge(SiteId(0), SiteId(1), "x"), Verdict::Deliver);
        assert!(
            a.streams.is_empty(),
            "an inactive plan must not even materialize a stream"
        );
    }

    #[test]
    fn per_site_streams_are_independent_of_interleaving() {
        // The same per-site send sequence must consume the same rolls no
        // matter how sends from different sites interleave — the property
        // the parallel-epoch shards rely on.
        let spec = FaultSpec::drop_rate(0.4);
        let plan = || FaultPlan::new(11).default_spec(spec);
        let mut a = FaultInjector::new(plan());
        let mut b = FaultInjector::new(plan());
        // a: all of site 0's sends, then all of site 1's.
        let mut va: Vec<Verdict> = (0..16).map(|_| a.judge(SiteId(0), SiteId(2), "x")).collect();
        va.extend((0..16).map(|_| a.judge(SiteId(1), SiteId(2), "x")));
        // b: the same sends, alternating.
        let mut v0 = Vec::new();
        let mut v1 = Vec::new();
        for _ in 0..16 {
            v0.push(b.judge(SiteId(0), SiteId(2), "x"));
            v1.push(b.judge(SiteId(1), SiteId(2), "x"));
        }
        assert_eq!(&va[..16], &v0[..]);
        assert_eq!(&va[16..], &v1[..]);
    }

    #[test]
    fn split_and_absorb_preserve_streams() {
        let plan = FaultPlan::new(7).default_spec(FaultSpec::drop_rate(0.5));
        let mut whole = FaultInjector::new(plan.clone());
        let reference: Vec<Verdict> =
            (0..24).map(|_| whole.judge(SiteId(1), SiteId(0), "x")).collect();

        let mut parent = FaultInjector::new(plan);
        let first: Vec<Verdict> =
            (0..8).map(|_| parent.judge(SiteId(1), SiteId(0), "x")).collect();
        let sites: std::collections::BTreeSet<SiteId> = [SiteId(1)].into();
        let mut shard = parent.split_sites(&sites);
        let mid: Vec<Verdict> =
            (0..8).map(|_| shard.judge(SiteId(1), SiteId(0), "x")).collect();
        parent.absorb(shard);
        let last: Vec<Verdict> =
            (0..8).map(|_| parent.judge(SiteId(1), SiteId(0), "x")).collect();
        let replay: Vec<Verdict> = first.into_iter().chain(mid).chain(last).collect();
        assert_eq!(replay, reference, "split/absorb must not perturb a stream");
    }

    #[test]
    fn gray_specs_are_directional() {
        let plan = FaultPlan::new(0)
            .slow_link(SiteId(0), SiteId(1), 4, Ticks::micros(50))
            .block_direction(SiteId(2), SiteId(3));
        let slow = plan.gray_for(SiteId(0), SiteId(1)).expect("installed");
        assert!(slow.is_slow() && !slow.blocked);
        assert_eq!(slow.inflate(Ticks::micros(100)), Ticks::micros(450));
        assert_eq!(plan.gray_for(SiteId(1), SiteId(0)), None, "one-way");
        assert!(plan.gray_for(SiteId(2), SiteId(3)).expect("blocked").blocked);
        assert_eq!(plan.gray_for(SiteId(3), SiteId(2)), None, "one-way");
    }

    #[test]
    fn flap_rate_one_always_aborts() {
        let plan = FaultPlan::new(3).flap_site(SiteId(1), 1.0);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..10 {
            assert_eq!(inj.judge(SiteId(0), SiteId(1), "x"), Verdict::CircuitAbort);
            assert_eq!(inj.judge(SiteId(1), SiteId(0), "x"), Verdict::CircuitAbort);
        }
        assert_eq!(
            inj.judge(SiteId(0), SiteId(2), "x"),
            Verdict::Deliver,
            "messages not touching the flapping site are untouched"
        );
    }

    #[test]
    fn flap_roll_preserves_the_stream_of_flapless_plans() {
        // A plan with probabilistic specs but no flapping sites must
        // consume the exact per-site RNG stream (three rolls per judged
        // message, no circuit aborts), with the stream seeded by the
        // documented derivation rule.
        let spec = FaultSpec {
            drop: 0.3,
            duplicate: 0.1,
            delay_prob: 0.2,
            delay: Ticks::micros(10),
            ..Default::default()
        };
        let mut inj = FaultInjector::new(FaultPlan::new(77).default_spec(spec));
        let mut reference = SimRng::seed_from_u64(site_stream_seed(77, SiteId(0)));
        let mut verdicts = Vec::new();
        for _ in 0..32 {
            verdicts.push(inj.judge(SiteId(0), SiteId(1), "x"));
            let (d, dup, del) = (
                reference.gen_f64(),
                reference.gen_f64(),
                reference.gen_f64(),
            );
            let expect = if d < spec.drop {
                Verdict::Drop
            } else if dup < spec.duplicate {
                Verdict::Duplicate
            } else if del < spec.delay_prob {
                Verdict::Delay(spec.delay)
            } else {
                Verdict::Deliver
            };
            assert_eq!(*verdicts.last().unwrap(), expect);
        }
    }

    #[test]
    fn flap_only_plans_roll_once_per_message() {
        // With no probabilistic spec active, a flap-involved message
        // consumes exactly one roll.
        let mut inj = FaultInjector::new(FaultPlan::new(5).flap_site(SiteId(1), 0.5));
        let mut reference = SimRng::seed_from_u64(site_stream_seed(5, SiteId(0)));
        for _ in 0..32 {
            let v = inj.judge(SiteId(0), SiteId(1), "x");
            let expect = if reference.gen_f64() < 0.5 {
                Verdict::CircuitAbort
            } else {
                Verdict::Deliver
            };
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Ticks::millis(2));
        assert_eq!(p.backoff(1), Ticks::millis(4));
        assert_eq!(p.backoff(2), Ticks::millis(8));
        assert_eq!(RetryPolicy::none().backoff(5), Ticks::ZERO);
    }
}
