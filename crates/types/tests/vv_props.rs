//! Property-based tests for version-vector lattice laws.

use locus_types::{VersionVector, VvOrder};
use proptest::prelude::*;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec((0u32..6, 0u64..8), 0..6).prop_map(|pairs| {
        let mut v = VersionVector::new();
        for (origin, count) in pairs {
            for _ in 0..count {
                v.bump(origin);
            }
        }
        v
    })
}

proptest! {
    #[test]
    fn compare_is_antisymmetric(a in arb_vv(), b in arb_vv()) {
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        let expect = match ab {
            VvOrder::Equal => VvOrder::Equal,
            VvOrder::Dominates => VvOrder::Dominated,
            VvOrder::Dominated => VvOrder::Dominates,
            VvOrder::Concurrent => VvOrder::Concurrent,
        };
        prop_assert_eq!(ba, expect);
    }

    #[test]
    fn compare_equal_iff_same(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.compare(&b) == VvOrder::Equal, a == b);
    }

    #[test]
    fn merge_max_is_least_upper_bound(a in arb_vv(), b in arb_vv()) {
        let m = a.merge_max(&b);
        prop_assert!(m.covers(&a));
        prop_assert!(m.covers(&b));
        // Least: every origin count in m appears in a or b.
        for (origin, count) in m.iter() {
            prop_assert!(a.get(origin) == count || b.get(origin) == count);
        }
    }

    #[test]
    fn merge_max_commutative(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.merge_max(&b), b.merge_max(&a));
    }

    #[test]
    fn merge_max_associative(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        prop_assert_eq!(a.merge_max(&b).merge_max(&c), a.merge_max(&b.merge_max(&c)));
    }

    #[test]
    fn merge_max_idempotent(a in arb_vv()) {
        prop_assert_eq!(a.merge_max(&a), a.clone());
    }

    #[test]
    fn bump_strictly_dominates(a in arb_vv(), origin in 0u32..6) {
        let mut bumped = a.clone();
        bumped.bump(origin);
        prop_assert_eq!(bumped.compare(&a), VvOrder::Dominates);
    }

    #[test]
    fn covers_is_transitive(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    #[test]
    fn total_matches_iter_sum(a in arb_vv()) {
        let sum: u64 = a.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(a.total(), sum);
    }
}
