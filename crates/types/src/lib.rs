//! Fundamental identifiers and value types shared by every LOCUS subsystem.
//!
//! This crate is the vocabulary of the reproduction: site, filegroup and
//! inode identifiers, the `<logical filegroup, inode>` globally unique
//! low-level file name the paper builds everything on (§2.2.2), version
//! vectors used for mutual-inconsistency detection (Parker et al., as cited
//! in §2.2.2 and §4.2), virtual time, and the errno-style error type used
//! across the simulated kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod file;
pub mod id;
pub mod time;
pub mod vv;

pub use error::{Errno, SysResult};
pub use file::{FileType, OpenMode, Perms};
pub use id::{FilegroupId, Gfid, Ino, MachineType, PackId, Pid, SiteId};
pub use time::Ticks;
pub use vv::{VersionVector, VvOrder};
