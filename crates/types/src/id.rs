//! Identifiers for sites, filegroups, inodes, packs and processes.
//!
//! The paper's globally unique low-level file name is the pair
//! `<logical filegroup number, file descriptor (inode) number>` (§2.2.2);
//! [`Gfid`] is that pair. A *pack* is one physical container of a logical
//! filegroup; a pack stores a subset of the filegroup's files and owns a
//! slice of its inode-number space so that creation works under partition
//! (§2.3.7).

use core::fmt;

/// Identifier of one site (machine) in the LOCUS network.
///
/// The original installation was 17 VAX-11/750s; sites here are simulated
/// kernels. Site numbers also provide the total order the reconfiguration
/// protocol uses to break ties (§5.7).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Returns the raw site number.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a logical filegroup (the paper's term for a Unix
/// "filesystem": a wholly self-contained subtree of the naming hierarchy).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FilegroupId(pub u32);

impl fmt::Display for FilegroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fg{}", self.0)
    }
}

/// Inode number within a logical filegroup.
///
/// All physical copies of a file carry the *same* inode number within the
/// logical filegroup (§2.2.2), which is what lets sites talk about a file
/// without agreeing on where it is stored.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ino(pub u32);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// The globally unique low-level name of a file:
/// `<logical filegroup number, inode number>` (§2.2.2).
///
/// # Examples
///
/// ```
/// use locus_types::{FilegroupId, Gfid, Ino};
///
/// let root = Gfid::new(FilegroupId(0), Ino(1));
/// assert_eq!(root.to_string(), "<fg0,i1>");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gfid {
    /// Logical filegroup containing the file.
    pub fg: FilegroupId,
    /// Inode number within the filegroup.
    pub ino: Ino,
}

impl Gfid {
    /// Builds a global file identifier from its two components.
    pub const fn new(fg: FilegroupId, ino: Ino) -> Self {
        Gfid { fg, ino }
    }
}

impl fmt::Display for Gfid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.fg, self.ino)
    }
}

/// Identifier of one physical container (pack) of a logical filegroup.
///
/// A pack lives on exactly one site and stores a subset of the filegroup's
/// files (§2.2.2: "any physical container is incomplete").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PackId {
    /// The logical filegroup this pack is a container for.
    pub fg: FilegroupId,
    /// Index of this pack among the filegroup's containers.
    pub idx: u32,
}

impl PackId {
    /// Builds a pack identifier.
    pub const fn new(fg: FilegroupId, idx: u32) -> Self {
        PackId { fg, idx }
    }
}

impl fmt::Display for PackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.fg, self.idx)
    }
}

/// Network-wide process identifier.
///
/// LOCUS process identifiers are unique across the whole network so that
/// signals and waits work transparently across sites (§3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// CPU/machine type of a site, used by hidden directories to select the
/// right load module transparently (§2.4.1: PDP-11/45 vs. VAX-750).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MachineType {
    /// DEC VAX-11/750 (the production UCLA configuration).
    Vax,
    /// DEC PDP-11/45 (the initial development machines).
    Pdp11,
}

impl MachineType {
    /// The context name used as the entry name inside a hidden directory
    /// (§2.4.1 uses `/bin/who` containing entries `45` and `vax`).
    pub const fn context_name(self) -> &'static str {
        match self {
            MachineType::Vax => "vax",
            MachineType::Pdp11 => "45",
        }
    }
}

impl fmt::Display for MachineType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.context_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gfid_display_and_order() {
        let a = Gfid::new(FilegroupId(0), Ino(1));
        let b = Gfid::new(FilegroupId(0), Ino(2));
        let c = Gfid::new(FilegroupId(1), Ino(0));
        assert!(a < b && b < c);
        assert_eq!(format!("{a}"), "<fg0,i1>");
    }

    #[test]
    fn site_ordering_is_total() {
        let mut v = vec![SiteId(3), SiteId(1), SiteId(2)];
        v.sort();
        assert_eq!(v, vec![SiteId(1), SiteId(2), SiteId(3)]);
    }

    #[test]
    fn machine_context_names() {
        assert_eq!(MachineType::Vax.context_name(), "vax");
        assert_eq!(MachineType::Pdp11.to_string(), "45");
    }

    #[test]
    fn pack_display() {
        assert_eq!(PackId::new(FilegroupId(2), 1).to_string(), "fg2.p1");
    }
}
