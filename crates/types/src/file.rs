//! File types, open modes and permissions.
//!
//! LOCUS attaches a *type* to every file; recovery software uses the type
//! to pick a reconciliation strategy (§4.3 lists directories, mailboxes,
//! database files and untyped files).

use core::fmt;

/// The file types known to the LOCUS nucleus (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileType {
    /// Ordinary file whose internal structure the nucleus does not know.
    Untyped,
    /// A naming-catalog directory; merged automatically by the system.
    Directory,
    /// A mailbox; merged automatically by the mail merge programs (§4.5).
    Mailbox,
    /// A database file; conflicts are reflected up to a recovery/merge
    /// manager rather than resolved by the nucleus (§4.1).
    Database,
    /// A *hidden directory* used for context-sensitive (per machine type)
    /// name resolution (§2.4.1).
    HiddenDirectory,
    /// A character device special file (§2.4.2).
    Device,
    /// A named pipe (FIFO); semantics identical to single-machine Unix
    /// even across sites (§2.4.2).
    Pipe,
}

impl FileType {
    /// Whether pathname resolution treats this file as a directory.
    pub const fn is_directory_like(self) -> bool {
        matches!(self, FileType::Directory | FileType::HiddenDirectory)
    }

    /// Whether the system knows how to merge diverged copies of this type
    /// automatically after partition (§4.3).
    pub const fn system_mergeable(self) -> bool {
        matches!(
            self,
            FileType::Directory | FileType::HiddenDirectory | FileType::Mailbox
        )
    }
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Untyped => "file",
            FileType::Directory => "dir",
            FileType::Mailbox => "mailbox",
            FileType::Database => "database",
            FileType::HiddenDirectory => "hiddendir",
            FileType::Device => "device",
            FileType::Pipe => "pipe",
        };
        f.write_str(s)
    }
}

/// Mode requested on open (§2.3.3, §2.3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpenMode {
    /// Normal synchronized read.
    Read,
    /// Open for modification; the CSS enforces the single-writer policy.
    Write,
    /// Internal *unsynchronized* read used by pathname searching: no global
    /// locking, so directory interrogation can proceed concurrently with
    /// updates (§2.3.4).
    InternalUnsyncRead,
}

impl OpenMode {
    /// Whether this open may modify the file.
    pub const fn is_write(self) -> bool {
        matches!(self, OpenMode::Write)
    }

    /// Whether this open takes part in global synchronization at the CSS.
    pub const fn synchronized(self) -> bool {
        !matches!(self, OpenMode::InternalUnsyncRead)
    }
}

/// Unix-style permission bits (owner/group/other, rwx each), kept simple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Perms(pub u16);

impl Perms {
    /// `rw-r--r--`, the usual default for files.
    pub const FILE_DEFAULT: Perms = Perms(0o644);
    /// `rwxr-xr-x`, the usual default for directories and load modules.
    pub const DIR_DEFAULT: Perms = Perms(0o755);

    /// Whether the owner may read.
    pub const fn owner_read(self) -> bool {
        self.0 & 0o400 != 0
    }

    /// Whether the owner may write.
    pub const fn owner_write(self) -> bool {
        self.0 & 0o200 != 0
    }

    /// Whether the owner may execute / search.
    pub const fn owner_exec(self) -> bool {
        self.0 & 0o100 != 0
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_likes() {
        assert!(FileType::Directory.is_directory_like());
        assert!(FileType::HiddenDirectory.is_directory_like());
        assert!(!FileType::Mailbox.is_directory_like());
    }

    #[test]
    fn mergeable_types_match_paper() {
        // §4.3: directories and mailboxes have simple enough semantics for
        // the system to merge mechanically; databases and untyped files do
        // not.
        assert!(FileType::Directory.system_mergeable());
        assert!(FileType::Mailbox.system_mergeable());
        assert!(!FileType::Database.system_mergeable());
        assert!(!FileType::Untyped.system_mergeable());
    }

    #[test]
    fn open_mode_flags() {
        assert!(OpenMode::Write.is_write());
        assert!(!OpenMode::Read.is_write());
        assert!(OpenMode::Read.synchronized());
        assert!(!OpenMode::InternalUnsyncRead.synchronized());
    }

    #[test]
    fn perm_bits() {
        let p = Perms::FILE_DEFAULT;
        assert!(p.owner_read() && p.owner_write() && !p.owner_exec());
        assert_eq!(p.to_string(), "0644");
    }
}
