//! The errno-style error type used throughout the simulated kernel.
//!
//! LOCUS folds distribution errors into the existing Unix interface "to the
//! degree possible" (§3.3); the variants here are the classic Unix errnos
//! plus the small set of new error types the paper introduces for site
//! failure and partition.

use core::fmt;

/// Result alias used by every simulated system call.
pub type SysResult<T> = Result<T, Errno>;

/// Unix-flavoured error numbers, extended with the LOCUS distribution
/// failures (§3.3, §5.6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    Eperm,
    /// No such file or directory.
    Enoent,
    /// I/O error.
    Eio,
    /// Bad file descriptor.
    Ebadf,
    /// Permission denied.
    Eacces,
    /// File exists.
    Eexist,
    /// Cross-device (cross-filegroup) link.
    Exdev,
    /// Not a directory.
    Enotdir,
    /// Is a directory.
    Eisdir,
    /// Invalid argument.
    Einval,
    /// File table overflow / too many open files.
    Emfile,
    /// No space left on pack.
    Enospc,
    /// Directory not empty.
    Enotempty,
    /// Too many links.
    Emlink,
    /// No such process.
    Esrch,
    /// No child processes.
    Echild,
    /// Resource temporarily unavailable (e.g. token not held and owner
    /// unreachable).
    Eagain,
    /// Text/file busy (open in a conflicting mode).
    Etxtbsy,
    /// Name too long.
    Enametoolong,
    /// Broken pipe: write with no readers (raises SIGPIPE).
    Epipe,
    /// The target site is not in the caller's partition or crashed
    /// mid-operation: the LOCUS "site unavailable" failure (§3.3).
    Esitedown,
    /// No copy of the file is available in this partition (§2.3.1: service
    /// requires at least one reachable storage site with the latest
    /// version).
    Enocopy,
    /// The file is marked in conflict after a partition merge and normal
    /// access is refused until reconciled (§4.6).
    Econflict,
    /// The operation lost its synchronization token or lock to a
    /// reconfiguration and was aborted (§5.6 cleanup table).
    Eabort,
    /// A transaction primitive was used outside any transaction.
    Enotxn,
}

impl Errno {
    /// Short symbolic name, as `perror` would print.
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eio => "EIO",
            Errno::Ebadf => "EBADF",
            Errno::Eacces => "EACCES",
            Errno::Eexist => "EEXIST",
            Errno::Exdev => "EXDEV",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Emfile => "EMFILE",
            Errno::Enospc => "ENOSPC",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Emlink => "EMLINK",
            Errno::Esrch => "ESRCH",
            Errno::Echild => "ECHILD",
            Errno::Eagain => "EAGAIN",
            Errno::Etxtbsy => "ETXTBSY",
            Errno::Enametoolong => "ENAMETOOLONG",
            Errno::Epipe => "EPIPE",
            Errno::Esitedown => "ESITEDOWN",
            Errno::Enocopy => "ENOCOPY",
            Errno::Econflict => "ECONFLICT",
            Errno::Eabort => "EABORT",
            Errno::Enotxn => "ENOTXN",
        }
    }

    /// Whether this error is one of the distribution-specific failures
    /// LOCUS adds on top of plain Unix (§3.3).
    pub const fn is_distribution_error(self) -> bool {
        matches!(
            self,
            Errno::Esitedown | Errno::Enocopy | Errno::Econflict | Errno::Eabort
        )
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Errno::Enoent.to_string(), "ENOENT");
        assert_eq!(Errno::Esitedown.name(), "ESITEDOWN");
    }

    #[test]
    fn distribution_errors_are_flagged() {
        assert!(Errno::Esitedown.is_distribution_error());
        assert!(Errno::Enocopy.is_distribution_error());
        assert!(!Errno::Enoent.is_distribution_error());
        assert!(!Errno::Eio.is_distribution_error());
    }
}
