//! Virtual time.
//!
//! The simulation measures cost in *ticks*; one tick is one microsecond of
//! simulated 1983-vintage time. All latency constants in `locus-net` and
//! `locus-storage` are expressed in ticks, so experiment harnesses report
//! micro/milliseconds directly.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in, or span of, virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ticks(pub u64);

impl Ticks {
    /// Zero time.
    pub const ZERO: Ticks = Ticks(0);

    /// Builds a span from microseconds.
    pub const fn micros(us: u64) -> Ticks {
        Ticks(us)
    }

    /// Builds a span from milliseconds.
    pub const fn millis(ms: u64) -> Ticks {
        Ticks(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub const fn secs(s: u64) -> Ticks {
        Ticks(s * 1_000_000)
    }

    /// The span as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by an integer factor.
    pub const fn scaled(self, factor: u64) -> Ticks {
        Ticks(self.0 * factor)
    }
}

impl Add for Ticks {
    type Output = Ticks;
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Ticks::millis(2).as_micros(), 2_000);
        assert_eq!(Ticks::secs(1).as_millis(), 1_000);
        assert_eq!(Ticks::micros(7).0, 7);
    }

    #[test]
    fn arithmetic() {
        let mut t = Ticks::micros(5);
        t += Ticks::micros(3);
        assert_eq!(t, Ticks::micros(8));
        assert_eq!(t - Ticks::micros(2), Ticks::micros(6));
        assert_eq!(
            Ticks::micros(1).saturating_sub(Ticks::micros(9)),
            Ticks::ZERO
        );
        assert_eq!(Ticks::micros(4).scaled(3), Ticks::micros(12));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ticks::micros(12).to_string(), "12us");
        assert_eq!(Ticks::micros(1_500).to_string(), "1.500ms");
        assert_eq!(Ticks::secs(2).to_string(), "2.000s");
    }
}
