//! Version vectors for mutual-inconsistency detection.
//!
//! Each copy of a replicated file carries a version vector "that maintains
//! necessary history information" (§2.2.2); at partition merge the vectors
//! of two copies are compared to decide whether one copy simply lags the
//! other (propagate) or the copies were modified in different partitions
//! (conflict). This is the algorithm of Parker, Popek et al., *Detection of
//! Mutual Inconsistency in Distributed Systems* (IEEE TSE, May 1983), cited
//! by the paper as \[PARK83\].
//!
//! A vector maps an *update origin* (we use the pack index of the physical
//! container where the commit was performed) to the count of updates
//! committed there.

use core::fmt;
use std::collections::BTreeMap;

/// Result of comparing two version vectors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VvOrder {
    /// The vectors are identical: the copies are the same version.
    Equal,
    /// Left strictly dominates right: left is newer, propagate left→right.
    Dominates,
    /// Right strictly dominates left: left is older, propagate right→left.
    Dominated,
    /// Neither dominates: the copies were updated independently in
    /// different partitions — a genuine conflict (§4.2).
    Concurrent,
}

impl VvOrder {
    /// Whether this ordering represents a detected update conflict.
    pub const fn is_conflict(self) -> bool {
        matches!(self, VvOrder::Concurrent)
    }
}

/// A version vector: update-origin → update count.
///
/// # Examples
///
/// ```
/// use locus_types::{VersionVector, VvOrder};
///
/// let mut a = VersionVector::new();
/// let mut b = VersionVector::new();
/// a.bump(0); // one commit at pack 0
/// assert_eq!(a.compare(&b), VvOrder::Dominates);
/// b.bump(1); // an independent commit at pack 1
/// assert_eq!(a.compare(&b), VvOrder::Concurrent);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VersionVector {
    counts: BTreeMap<u32, u64>,
}

impl VersionVector {
    /// An all-zero vector (a freshly created, never-committed file).
    pub fn new() -> Self {
        VersionVector::default()
    }

    /// The update count recorded for `origin` (zero if absent).
    pub fn get(&self, origin: u32) -> u64 {
        self.counts.get(&origin).copied().unwrap_or(0)
    }

    /// Records one more update committed at `origin`.
    pub fn bump(&mut self, origin: u32) {
        *self.counts.entry(origin).or_insert(0) += 1;
    }

    /// Total number of updates across all origins.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether no update has ever been recorded.
    pub fn is_zero(&self) -> bool {
        self.counts.values().all(|&c| c == 0)
    }

    /// Compares `self` against `other`.
    pub fn compare(&self, other: &VersionVector) -> VvOrder {
        let mut some_greater = false;
        let mut some_less = false;
        let origins = self.counts.keys().chain(other.counts.keys());
        for &origin in origins {
            let l = self.get(origin);
            let r = other.get(origin);
            if l > r {
                some_greater = true;
            } else if l < r {
                some_less = true;
            }
        }
        match (some_greater, some_less) {
            (false, false) => VvOrder::Equal,
            (true, false) => VvOrder::Dominates,
            (false, true) => VvOrder::Dominated,
            (true, true) => VvOrder::Concurrent,
        }
    }

    /// Whether `self` is at least as new as `other` (equal or dominating).
    pub fn covers(&self, other: &VersionVector) -> bool {
        matches!(self.compare(other), VvOrder::Equal | VvOrder::Dominates)
    }

    /// Element-wise maximum: the least vector covering both inputs. Used
    /// when a conflict is resolved so the reconciled copy dominates both
    /// ancestors (the resolver then [`bump`](Self::bump)s its own origin).
    pub fn merge_max(&self, other: &VersionVector) -> VersionVector {
        let mut out = self.clone();
        for (&origin, &count) in &other.counts {
            let slot = out.counts.entry(origin).or_insert(0);
            if count > *slot {
                *slot = count;
            }
        }
        out
    }

    /// Iterates over `(origin, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&o, &c)| (o, c))
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (o, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{o}:{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vectors_are_equal() {
        let a = VersionVector::new();
        let b = VersionVector::new();
        assert_eq!(a.compare(&b), VvOrder::Equal);
        assert!(a.is_zero());
    }

    #[test]
    fn linear_history_dominates() {
        let mut a = VersionVector::new();
        a.bump(0);
        a.bump(0);
        let mut b = VersionVector::new();
        b.bump(0);
        assert_eq!(a.compare(&b), VvOrder::Dominates);
        assert_eq!(b.compare(&a), VvOrder::Dominated);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn divergent_histories_conflict() {
        // The §4.2 example: f modified at S1 producing f1 while f was
        // modified at S2 producing f2 — merge must detect a conflict.
        let mut f1 = VersionVector::new();
        let mut f2 = VersionVector::new();
        f1.bump(1);
        f2.bump(2);
        assert!(f1.compare(&f2).is_conflict());
    }

    #[test]
    fn one_sided_update_is_not_a_conflict() {
        // The §4.2 non-conflict example: only S1's copy was modified, so
        // propagation (not conflict) results.
        let mut f1 = VersionVector::new();
        let f2 = VersionVector::new();
        f1.bump(1);
        assert_eq!(f1.compare(&f2), VvOrder::Dominates);
    }

    #[test]
    fn merge_max_covers_both() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        a.bump(0);
        a.bump(0);
        b.bump(1);
        let m = a.merge_max(&b);
        assert!(m.covers(&a) && m.covers(&b));
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn display_skips_zero_slots() {
        let mut v = VersionVector::new();
        v.bump(3);
        assert_eq!(v.to_string(), "[3:1]");
    }
}
