//! Property tests for shadow-page commit atomicity (§2.3.6): under any
//! random sequence of writes, truncates, commits, aborts and crashes, the
//! committed contents always equal the last committed image, and the pack
//! never corrupts.

use locus_storage::{DiskInode, Pack, ShadowSession, PAGE_SIZE};
use locus_types::{FileType, FilegroupId, PackId, Perms};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Write { lpn: usize, byte: u8 },
    Truncate { pages: usize },
    Commit,
    Abort,
    Crash,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..14, any::<u8>()).prop_map(|(lpn, byte)| Step::Write { lpn, byte }),
        (0usize..14).prop_map(|pages| Step::Truncate { pages }),
        Just(Step::Commit),
        Just(Step::Abort),
        Just(Step::Crash),
    ]
}

fn apply_model(model: &mut Vec<u8>, staged: &mut Vec<u8>, step: &Step) {
    match step {
        Step::Write { lpn, byte } => {
            let need = (lpn + 1) * PAGE_SIZE;
            if staged.len() < need {
                staged.resize(need, 0);
            }
            staged[lpn * PAGE_SIZE..(lpn + 1) * PAGE_SIZE].fill(*byte);
        }
        Step::Truncate { pages } => {
            staged.truncate(pages * PAGE_SIZE);
        }
        Step::Commit => {
            *model = staged.clone();
        }
        Step::Abort | Step::Crash => {
            *staged = model.clone();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn committed_state_always_matches_model(steps in proptest::collection::vec(arb_step(), 1..25)) {
        let mut pack = Pack::new(PackId::new(FilegroupId(0), 0), 1..32, 2048);
        let ino = pack.alloc_ino().unwrap();
        pack.install_inode(ino, DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0));
        pack.write_all(ino, b"genesis").unwrap();

        let mut model: Vec<u8> = b"genesis".to_vec();
        let mut staged = model.clone();
        let mut sess: Option<ShadowSession> = None;

        for step in &steps {
            match step {
                Step::Write { lpn, byte } => {
                    let s = match sess.as_mut() {
                        Some(s) => s,
                        None => {
                            sess = Some(ShadowSession::begin(&pack, ino).unwrap());
                            sess.as_mut().unwrap()
                        }
                    };
                    s.write_page(&mut pack, *lpn, &vec![*byte; PAGE_SIZE]).unwrap();
                    let need = ((*lpn + 1) * PAGE_SIZE) as u64;
                    if s.working().size < need {
                        s.set_size(need);
                    }
                }
                Step::Truncate { pages } => {
                    let s = match sess.as_mut() {
                        Some(s) => s,
                        None => {
                            sess = Some(ShadowSession::begin(&pack, ino).unwrap());
                            sess.as_mut().unwrap()
                        }
                    };
                    s.truncate_pages(&mut pack, *pages).unwrap();
                    let cap = (*pages * PAGE_SIZE) as u64;
                    if s.working().size > cap {
                        s.set_size(cap);
                    }
                }
                Step::Commit => {
                    if let Some(s) = sess.take() {
                        let mut vv = pack.inode(ino).unwrap().vv.clone();
                        vv.bump(pack.origin());
                        s.commit(&mut pack, vv).unwrap();
                    }
                }
                Step::Abort => {
                    if let Some(s) = sess.take() {
                        s.abort(&mut pack).unwrap();
                    }
                }
                Step::Crash => {
                    sess = None; // dropped: volatile incore state vanishes
                }
            }
            apply_model(&mut model, &mut staged, step);

            // Invariant: the committed image always equals the model.
            let disk = pack.read_all(ino).unwrap();
            prop_assert_eq!(&disk, &model, "diverged after {:?}", step);
            // Invariant: no allocation corruption, ever.
            prop_assert!(pack.fsck().is_ok());
        }
    }

    #[test]
    fn abort_never_leaks_blocks(writes in proptest::collection::vec((0usize..14, any::<u8>()), 1..20)) {
        let mut pack = Pack::new(PackId::new(FilegroupId(0), 0), 1..32, 2048);
        let ino = pack.alloc_ino().unwrap();
        pack.install_inode(ino, DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0));
        pack.write_all(ino, &vec![9u8; 3 * PAGE_SIZE]).unwrap();
        let free_before = pack.free_blocks();

        let mut sess = ShadowSession::begin(&pack, ino).unwrap();
        for (lpn, byte) in &writes {
            sess.write_page(&mut pack, *lpn, &vec![*byte; PAGE_SIZE]).unwrap();
        }
        sess.abort(&mut pack).unwrap();
        prop_assert_eq!(pack.free_blocks(), free_before, "shadow blocks leaked");
        prop_assert!(pack.fsck().is_ok());
    }
}
