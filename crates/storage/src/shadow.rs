//! Shadow-page file modification and atomic commit.
//!
//! §2.3.6: "LOCUS uses a shadow page mechanism … a new physical page is
//! allocated if a change is made to an existing page of a file. … Both
//! these cases leave the old information intact. … The atomic commit
//! operation consists merely of moving the incore inode information to the
//! disk inode. … To abort … one merely discards the incore information."
//!
//! A [`ShadowSession`] is the incore inode of a file open for
//! modification at its storage site. Until [`commit`](ShadowSession::commit)
//! the on-disk inode and all of its pages are untouched, so a crash (drop
//! of the session) at *any* point leaves the old version intact — the
//! property experiment E8 injects faults to verify.

use std::collections::BTreeMap;

use locus_types::{Errno, Ino, SysResult, Ticks, VersionVector};

use crate::disk::{BlockContent, BlockNo, PAGE_SIZE};
use crate::inode::{DiskInode, NDIRECT, NINDIRECT};
use crate::pack::Pack;

/// An in-progress set of modifications to one file at one pack.
#[derive(Debug)]
pub struct ShadowSession {
    ino: Ino,
    work: DiskInode,
    /// Logical pages already shadowed this session; subsequent writes to
    /// them are "reused in place" (§2.3.6).
    shadowed: BTreeMap<usize, BlockNo>,
    /// Old blocks to release if and only if the session commits.
    free_on_commit: Vec<BlockNo>,
    /// Whether the indirect block has been shadowed.
    indirect_shadowed: bool,
}

impl ShadowSession {
    /// Opens a modification session on `ino`, cloning its disk inode as
    /// the incore working copy.
    pub fn begin(pack: &Pack, ino: Ino) -> SysResult<Self> {
        let work = pack.inode(ino).ok_or(Errno::Enoent)?.clone();
        Ok(ShadowSession {
            ino,
            work,
            shadowed: BTreeMap::new(),
            free_on_commit: Vec::new(),
            indirect_shadowed: false,
        })
    }

    /// The file being modified.
    pub fn ino(&self) -> Ino {
        self.ino
    }

    /// The working (incore) inode.
    pub fn working(&self) -> &DiskInode {
        &self.work
    }

    /// Reads a page as currently visible *within* this session (shadow
    /// content if written, otherwise the committed content).
    pub fn read_page(&self, pack: &mut Pack, lpn: usize) -> SysResult<Vec<u8>> {
        if let Some(&b) = self.shadowed.get(&lpn) {
            let content = pack.dev_mut().read(b)?;
            return Ok(content.data()?.to_vec());
        }
        match self.lookup(pack, lpn)? {
            None => Ok(vec![0u8; PAGE_SIZE]),
            Some(b) => {
                let content = pack.dev_mut().read(b)?;
                Ok(content.data()?.to_vec())
            }
        }
    }

    /// Writes one logical page. The first write to a page allocates a
    /// shadow block; later writes to the same page reuse it in place.
    pub fn write_page(&mut self, pack: &mut Pack, lpn: usize, bytes: &[u8]) -> SysResult<()> {
        if lpn >= NDIRECT + NINDIRECT {
            return Err(Errno::Einval);
        }
        if let Some(&b) = self.shadowed.get(&lpn) {
            pack.dev_mut().write(b, BlockContent::from_bytes(bytes))?;
            return Ok(());
        }
        let new = pack.dev_mut().alloc(BlockContent::from_bytes(bytes))?;
        if let Some(old) = self.lookup(pack, lpn)? {
            self.free_on_commit.push(old);
        }
        self.map(pack, lpn, Some(new))?;
        self.shadowed.insert(lpn, new);
        Ok(())
    }

    /// Unmaps every page at or beyond `npages` (shrinking truncate).
    pub fn truncate_pages(&mut self, pack: &mut Pack, npages: usize) -> SysResult<()> {
        let mapped = self.work.pages.mapped_pages(pack.dev_mut())?;
        for (lpn, bno) in mapped {
            if lpn < npages {
                continue;
            }
            if self.shadowed.remove(&lpn).is_some() {
                // A block born in this session dies in it.
                pack.dev_mut().free(bno)?;
            } else {
                self.free_on_commit.push(bno);
            }
            self.map(pack, lpn, None)?;
        }
        Ok(())
    }

    /// Sets the working file size.
    pub fn set_size(&mut self, size: u64) {
        self.work.size = size;
    }

    /// Sets the working permission bits (an inode-only change; the commit
    /// notification can say "just inode information changed", §2.3.6).
    pub fn set_perms(&mut self, perms: locus_types::Perms) {
        self.work.perms = perms;
    }

    /// Sets the working owner.
    pub fn set_owner(&mut self, owner: u32) {
        self.work.owner = owner;
    }

    /// Sets the working link count.
    pub fn set_nlink(&mut self, nlink: u32) {
        self.work.nlink = nlink;
    }

    /// Sets the working modification time.
    pub fn set_mtime(&mut self, mtime: Ticks) {
        self.work.mtime = mtime;
    }

    /// Marks the working inode deleted ("the US marks the inode and does a
    /// commit", §2.3.7); data pages are released at commit, leaving a
    /// tombstone that propagates the delete.
    pub fn mark_deleted(&mut self) {
        self.work.deleted = true;
    }

    /// Clears the deleted tombstone — recovery's §4.4 rule d "the delete
    /// is undone" path, resurrecting a file modified in another partition.
    pub fn undelete(&mut self) {
        self.work.deleted = false;
    }

    /// Clears or sets the conflict mark (recovery uses this).
    pub fn set_conflict(&mut self, conflict: bool) {
        self.work.conflict = conflict;
    }

    /// Replaces the replica (pack-index) list carried in the inode.
    pub fn set_replicas(&mut self, replicas: Vec<u32>) {
        self.work.replicas = replicas;
    }

    /// Marks whether this copy holds data pages (a metadata-only copy
    /// becomes a data copy when propagation pulls the pages in, §2.3.6).
    pub fn set_data_here(&mut self, data_here: bool) {
        self.work.data_here = data_here;
    }

    /// The logical pages modified in this session, for the commit
    /// notification's "which explicit logical pages were modified" option
    /// (§2.3.6).
    pub fn modified_pages(&self) -> Vec<usize> {
        self.shadowed.keys().copied().collect()
    }

    /// Atomically installs the working inode with `new_vv` as the file's
    /// version vector, releasing replaced blocks. This is the single
    /// atomic step of §2.3.6.
    pub fn commit(mut self, pack: &mut Pack, new_vv: VersionVector) -> SysResult<()> {
        self.work.vv = new_vv;
        if self.work.deleted {
            let mapped = self.work.pages.mapped_pages(pack.dev_mut())?;
            for (_, bno) in mapped {
                pack.dev_mut().free(bno)?;
            }
            if let Some(ib) = self.work.pages.indirect {
                pack.dev_mut().free(ib)?;
            }
            self.work.pages = Default::default();
            self.work.size = 0;
        }
        for bno in self.free_on_commit.drain(..) {
            pack.dev_mut().free(bno)?;
        }
        pack.itable_mut().insert(self.ino, self.work);
        pack.next_commit_seq();
        Ok(())
    }

    /// Discards the session: every shadow block is released and the
    /// committed version remains exactly as it was.
    pub fn abort(mut self, pack: &mut Pack) -> SysResult<()> {
        for (_, bno) in std::mem::take(&mut self.shadowed) {
            pack.dev_mut().free(bno)?;
        }
        if self.indirect_shadowed {
            if let Some(ib) = self.work.pages.indirect {
                pack.dev_mut().free(ib)?;
            }
        }
        Ok(())
    }

    /// Looks up the *working* mapping of `lpn`.
    fn lookup(&self, pack: &mut Pack, lpn: usize) -> SysResult<Option<BlockNo>> {
        self.work.pages.lookup(lpn, pack.dev_mut())
    }

    /// Shadow-aware mapping update: the committed inode's indirect block
    /// is never modified; the first indirect-range update clones it.
    fn map(&mut self, pack: &mut Pack, lpn: usize, bno: Option<BlockNo>) -> SysResult<()> {
        if lpn < NDIRECT {
            self.work.pages.direct[lpn] = bno;
            return Ok(());
        }
        let idx = lpn - NDIRECT;
        if idx >= NINDIRECT {
            return Err(Errno::Einval);
        }
        if !self.indirect_shadowed {
            let table = match self.work.pages.indirect {
                None => {
                    if bno.is_none() {
                        return Ok(());
                    }
                    vec![None; NINDIRECT]
                }
                Some(old_ib) => {
                    self.free_on_commit.push(old_ib);
                    match pack.dev_mut().read(old_ib)? {
                        BlockContent::Index(t) => t,
                        BlockContent::Data(_) => return Err(Errno::Eio),
                    }
                }
            };
            let new_ib = pack.dev_mut().alloc(BlockContent::Index(table))?;
            self.work.pages.indirect = Some(new_ib);
            self.indirect_shadowed = true;
        }
        let ib = self.work.pages.indirect.expect("indirect shadowed above");
        let mut table = match pack.dev_mut().read(ib)? {
            BlockContent::Index(t) => t,
            BlockContent::Data(_) => return Err(Errno::Eio),
        };
        table[idx] = bno;
        pack.dev_mut().write(ib, BlockContent::Index(table))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_types::{FileType, FilegroupId, PackId, Perms};

    fn pack_with_file(data: &[u8]) -> (Pack, Ino) {
        let mut p = Pack::new(PackId::new(FilegroupId(0), 0), 1..40, 256);
        let ino = p.alloc_ino().unwrap();
        p.install_inode(
            ino,
            DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0),
        );
        if !data.is_empty() {
            p.write_all(ino, data).unwrap();
        }
        (p, ino)
    }

    #[test]
    fn abort_leaves_old_version_intact() {
        let (mut p, ino) = pack_with_file(b"original");
        let free_before = p.free_blocks();
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.write_page(&mut p, 0, b"clobbered").unwrap();
        s.set_size(9);
        s.abort(&mut p).unwrap();
        assert_eq!(p.read_all(ino).unwrap(), b"original");
        assert_eq!(p.free_blocks(), free_before, "shadow blocks released");
        p.fsck().unwrap();
    }

    #[test]
    fn commit_installs_new_version_and_frees_old_pages() {
        let (mut p, ino) = pack_with_file(b"original");
        let free_before = p.free_blocks();
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.write_page(&mut p, 0, b"newdata!").unwrap();
        s.set_size(8);
        let mut vv = p.inode(ino).unwrap().vv.clone();
        vv.bump(p.origin());
        s.commit(&mut p, vv).unwrap();
        assert_eq!(p.read_all(ino).unwrap(), b"newdata!");
        assert_eq!(p.free_blocks(), free_before, "old page freed, shadow kept");
        p.fsck().unwrap();
    }

    #[test]
    fn drop_without_commit_models_crash() {
        // E8: a crash at any point before commit must leave the old file.
        let (mut p, ino) = pack_with_file(b"stable");
        {
            let mut s = ShadowSession::begin(&p, ino).unwrap();
            s.write_page(&mut p, 0, b"doomed").unwrap();
            // Session dropped here: the crash. (Shadow blocks leak on the
            // simulated disk exactly as they would on a real one until
            // fsck, but the committed data is intact.)
        }
        assert_eq!(p.read_all(ino).unwrap(), b"stable");
    }

    #[test]
    fn page_rewritten_twice_reuses_shadow_block() {
        let (mut p, ino) = pack_with_file(b"x");
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.write_page(&mut p, 0, b"first").unwrap();
        let free_after_first = p.free_blocks();
        s.write_page(&mut p, 0, b"second").unwrap();
        assert_eq!(p.free_blocks(), free_after_first, "reused in place");
        assert_eq!(s.modified_pages(), vec![0]);
        let vv = s.working().vv.clone();
        s.set_size(6);
        s.commit(&mut p, vv).unwrap();
        assert_eq!(p.read_all(ino).unwrap(), b"second");
    }

    #[test]
    fn indirect_block_is_shadowed_not_mutated() {
        let big = vec![3u8; (NDIRECT + 2) * PAGE_SIZE];
        let (mut p, ino) = pack_with_file(&big);
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.write_page(&mut p, NDIRECT + 1, b"modified-tail").unwrap();
        // Abort: the committed indirect table still points at old pages.
        s.abort(&mut p).unwrap();
        assert_eq!(p.read_all(ino).unwrap(), big);
        p.fsck().unwrap();
    }

    #[test]
    fn delete_commit_releases_pages_and_leaves_tombstone() {
        let (mut p, ino) = pack_with_file(&vec![9u8; 3 * PAGE_SIZE]);
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.mark_deleted();
        let mut vv = s.working().vv.clone();
        vv.bump(p.origin());
        s.commit(&mut p, vv).unwrap();
        let inode = p.inode(ino).unwrap();
        assert!(inode.deleted);
        assert_eq!(inode.size, 0);
        assert!(p.stores(ino), "tombstone remains to propagate the delete");
        p.fsck().unwrap();
    }

    #[test]
    fn session_read_sees_own_writes_but_disk_does_not() {
        let (mut p, ino) = pack_with_file(b"committed");
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.write_page(&mut p, 0, b"uncommitted").unwrap();
        let in_session = s.read_page(&mut p, 0).unwrap();
        assert_eq!(&in_session[..11], b"uncommitted");
        let on_disk = p.read_page(ino, 0).unwrap();
        assert_eq!(&on_disk[..9], b"committed");
        s.abort(&mut p).unwrap();
    }

    #[test]
    fn growing_file_through_indirect_range() {
        let (mut p, ino) = pack_with_file(b"small");
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        let n = NDIRECT + 3;
        for lpn in 0..n {
            s.write_page(&mut p, lpn, &[lpn as u8; PAGE_SIZE]).unwrap();
        }
        s.set_size((n * PAGE_SIZE) as u64);
        let vv = s.working().vv.clone();
        s.commit(&mut p, vv).unwrap();
        let all = p.read_all(ino).unwrap();
        assert_eq!(all.len(), n * PAGE_SIZE);
        assert_eq!(all[NDIRECT * PAGE_SIZE], NDIRECT as u8);
        p.fsck().unwrap();
    }

    #[test]
    fn truncate_in_session_is_atomic_too() {
        let (mut p, ino) = pack_with_file(&vec![1u8; 4 * PAGE_SIZE]);
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.truncate_pages(&mut p, 1).unwrap();
        s.set_size(PAGE_SIZE as u64);
        s.abort(&mut p).unwrap();
        assert_eq!(p.read_all(ino).unwrap().len(), 4 * PAGE_SIZE);
        let mut s = ShadowSession::begin(&p, ino).unwrap();
        s.truncate_pages(&mut p, 1).unwrap();
        s.set_size(PAGE_SIZE as u64);
        let vv = s.working().vv.clone();
        s.commit(&mut p, vv).unwrap();
        assert_eq!(p.read_all(ino).unwrap().len(), PAGE_SIZE);
        p.fsck().unwrap();
    }
}
