//! The per-site buffer cache.
//!
//! "All such requests are serviced via kernel buffers, both in standard
//! Unix and in LOCUS … including the one page readahead done for files
//! being read sequentially" (§2.3.3). The cache is keyed by
//! `(pack, inode, logical page)`; the propagation process and the network
//! read path rename buffers rather than copying through user space, which
//! we model by the cache simply holding page images.

use std::collections::HashMap;

use locus_types::{Ino, PackId};

/// Cache key: one logical page of one file copy.
pub type PageKey = (PackId, Ino, usize);

/// Cumulative cache counters.
///
/// The page fields account the buffer cache; the `dentry_*`/`attr_*`/
/// `name_invalidations` fields account the filesystem layer's name and
/// attribute cache, which reports through the same structure so one
/// merge covers every cache a site runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages dropped by explicit invalidation (not LRU eviction).
    pub invalidations: u64,
    /// Directory-contents lookups served from the name cache.
    pub dentry_hits: u64,
    /// Directory-contents lookups that re-read the directory.
    pub dentry_misses: u64,
    /// Attribute lookups served from the name cache.
    pub attr_hits: u64,
    /// Attribute lookups that re-fetched the inode information.
    pub attr_misses: u64,
    /// Name/attribute entries dropped by invalidation or flush.
    pub name_invalidations: u64,
    /// Directory contents materialized by parse + copy on a name-cache
    /// fill. A validated hit serves the parsed contents by shared
    /// pointer, so this stays proportional to misses, not hits.
    pub dir_deep_copies: u64,
    /// Coherence leases granted by a CSS (name-lease mode).
    pub lease_grants: u64,
    /// Name/attribute lookups served locally under a live lease, with no
    /// validation probe and zero wire traffic.
    pub lease_hits: u64,
    /// Inbound `LeaseRecall` callbacks processed by holders.
    pub lease_recalls: u64,
    /// Recall acknowledgements received by the recalling CSS.
    pub lease_recall_acks: u64,
    /// Leases revoked without a recall round trip (unreachable holder,
    /// §5.6 cleanup, quarantine or readmission).
    pub lease_revokes: u64,
}

impl CacheStats {
    /// Page hits over total page lookups; 0.0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Dentry hits over total dentry lookups; 0.0 when none happened.
    pub fn dentry_hit_ratio(&self) -> f64 {
        let total = self.dentry_hits + self.dentry_misses;
        if total == 0 {
            0.0
        } else {
            self.dentry_hits as f64 / total as f64
        }
    }

    /// Attribute hits over total attribute lookups; 0.0 when none
    /// happened.
    pub fn attr_hit_ratio(&self) -> f64 {
        let total = self.attr_hits + self.attr_misses;
        if total == 0 {
            0.0
        } else {
            self.attr_hits as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating per-site caches).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.dentry_hits += other.dentry_hits;
        self.dentry_misses += other.dentry_misses;
        self.attr_hits += other.attr_hits;
        self.attr_misses += other.attr_misses;
        self.name_invalidations += other.name_invalidations;
        self.dir_deep_copies += other.dir_deep_copies;
        self.lease_grants += other.lease_grants;
        self.lease_hits += other.lease_hits;
        self.lease_recalls += other.lease_recalls;
        self.lease_recall_acks += other.lease_recall_acks;
        self.lease_revokes += other.lease_revokes;
    }
}

/// A fixed-capacity LRU page cache with hit/miss accounting.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<PageKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    last_used: u64,
}

impl BufferCache {
    /// A cache holding up to `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Whether a page is cached, without touching recency or the hit/miss
    /// counters (the batched read path probes ahead with this so the
    /// probes don't perturb the accounted hit ratio).
    pub fn contains(&self, key: &PageKey) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up a page, refreshing its recency on hit.
    pub fn get(&mut self, key: &PageKey) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a page, evicting the least recently used
    /// entry if full.
    pub fn put(&mut self, key: PageKey, data: Vec<u8>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            Entry {
                data,
                last_used: self.tick,
            },
        );
    }

    /// Drops every cached page of a file (on commit of a new version, the
    /// old buffers are stale; on delete they are discarded).
    pub fn invalidate_file(&mut self, pack: PackId, ino: Ino) {
        let before = self.map.len();
        self.map.retain(|(p, i, _), _| !(*p == pack && *i == ino));
        self.invalidations += (before - self.map.len()) as u64;
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Full counters, including invalidations. The name-cache fields are
    /// zero here; the filesystem layer merges its own counters in.
    pub fn full_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            ..CacheStats::default()
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_types::FilegroupId;

    fn key(ino: u32, lpn: usize) -> PageKey {
        (PackId::new(FilegroupId(0), 0), Ino(ino), lpn)
    }

    #[test]
    fn hit_after_put() {
        let mut c = BufferCache::new(4);
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(1, 0), vec![1, 2, 3]);
        assert_eq!(c.get(&key(1, 0)), Some(vec![1, 2, 3]));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = BufferCache::new(2);
        c.put(key(1, 0), vec![1]);
        c.put(key(2, 0), vec![2]);
        c.get(&key(1, 0)); // refresh 1
        c.put(key(3, 0), vec![3]); // evicts 2
        assert!(c.get(&key(2, 0)).is_none());
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(3, 0)).is_some());
    }

    #[test]
    fn invalidate_file_clears_all_its_pages() {
        let mut c = BufferCache::new(8);
        c.put(key(1, 0), vec![1]);
        c.put(key(1, 1), vec![2]);
        c.put(key(2, 0), vec![3]);
        c.invalidate_file(PackId::new(FilegroupId(0), 0), Ino(1));
        assert!(c.get(&key(1, 0)).is_none());
        assert!(c.get(&key(1, 1)).is_none());
        assert!(c.get(&key(2, 0)).is_some());
        assert_eq!(c.full_stats().invalidations, 2);
    }

    #[test]
    fn contains_probe_leaves_counters_alone() {
        let mut c = BufferCache::new(4);
        c.put(key(1, 0), vec![1]);
        assert!(c.contains(&key(1, 0)));
        assert!(!c.contains(&key(1, 1)));
        assert_eq!(c.full_stats(), CacheStats::default());
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut c = BufferCache::new(2);
        c.put(key(1, 0), vec![1]);
        c.put(key(2, 0), vec![2]);
        c.put(key(1, 0), vec![9]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(1, 0)), Some(vec![9]));
        assert!(c.get(&key(2, 0)).is_some());
    }
}
