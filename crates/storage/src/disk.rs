//! The simulated block device.
//!
//! Blocks hold either file data or an index of block numbers (the
//! "indirect pages that contain page pointers" of §2.3.6). I/O cost is
//! accumulated on an internal meter the filesystem drains onto the global
//! virtual clock.

use locus_types::{Errno, SysResult, Ticks};

/// Bytes per page/block — 1 KiB, the era-appropriate Unix block size.
pub const PAGE_SIZE: usize = 1024;

/// A physical block number within one device.
pub type BlockNo = u32;

/// Contents of one allocated block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockContent {
    /// File data, always exactly [`PAGE_SIZE`] bytes.
    Data(Box<[u8]>),
    /// An indirect block: a table of block numbers.
    Index(Vec<Option<BlockNo>>),
}

impl BlockContent {
    /// A zero-filled data block.
    pub fn zeroed() -> Self {
        BlockContent::Data(vec![0u8; PAGE_SIZE].into_boxed_slice())
    }

    /// Builds a data block from up to [`PAGE_SIZE`] bytes, zero padded.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`PAGE_SIZE`]; callers slice page-sized
    /// chunks before writing.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= PAGE_SIZE, "page overflow");
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[..bytes.len()].copy_from_slice(bytes);
        BlockContent::Data(buf.into_boxed_slice())
    }

    /// The data bytes, or an error if this is an index block.
    pub fn data(&self) -> SysResult<&[u8]> {
        match self {
            BlockContent::Data(d) => Ok(d),
            BlockContent::Index(_) => Err(Errno::Eio),
        }
    }
}

/// Cost constants for a simulated early-1980s Winchester disk.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Cost of reading one block from the platter.
    pub read_cost: Ticks,
    /// Cost of writing one block.
    pub write_cost: Ticks,
}

impl Default for DiskParams {
    fn default() -> Self {
        // ~25 ms average access on an RK07-class disk.
        DiskParams {
            read_cost: Ticks::millis(25),
            write_cost: Ticks::millis(25),
        }
    }
}

/// A fixed-size array of blocks with a free list and an I/O cost meter.
#[derive(Debug)]
pub struct BlockDevice {
    blocks: Vec<Option<BlockContent>>,
    free: Vec<BlockNo>,
    params: DiskParams,
    io_cost: Ticks,
    reads: u64,
    writes: u64,
}

impl BlockDevice {
    /// A device with `nblocks` free blocks.
    pub fn new(nblocks: u32, params: DiskParams) -> Self {
        BlockDevice {
            blocks: (0..nblocks).map(|_| None).collect(),
            free: (0..nblocks).rev().collect(),
            params,
            io_cost: Ticks::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Allocates a block and writes `content` to it.
    pub fn alloc(&mut self, content: BlockContent) -> SysResult<BlockNo> {
        let bno = self.free.pop().ok_or(Errno::Enospc)?;
        self.blocks[bno as usize] = Some(content);
        self.charge_write();
        Ok(bno)
    }

    /// Frees a block. Freeing an unallocated block is an I/O error (it
    /// indicates filesystem corruption, which the tests assert never
    /// happens).
    pub fn free(&mut self, bno: BlockNo) -> SysResult<()> {
        let slot = self.blocks.get_mut(bno as usize).ok_or(Errno::Eio)?;
        if slot.take().is_none() {
            return Err(Errno::Eio);
        }
        self.free.push(bno);
        Ok(())
    }

    /// Reads a block.
    pub fn read(&mut self, bno: BlockNo) -> SysResult<BlockContent> {
        let content = self
            .blocks
            .get(bno as usize)
            .and_then(|b| b.as_ref())
            .cloned()
            .ok_or(Errno::Eio)?;
        self.charge_read();
        Ok(content)
    }

    /// Overwrites an allocated block in place.
    pub fn write(&mut self, bno: BlockNo, content: BlockContent) -> SysResult<()> {
        let slot = self.blocks.get_mut(bno as usize).ok_or(Errno::Eio)?;
        if slot.is_none() {
            return Err(Errno::Eio);
        }
        *slot = Some(content);
        self.charge_write();
        Ok(())
    }

    /// Whether the block is currently allocated.
    pub fn is_allocated(&self, bno: BlockNo) -> bool {
        self.blocks
            .get(bno as usize)
            .map(|b| b.is_some())
            .unwrap_or(false)
    }

    /// Drains the accumulated I/O cost meter.
    pub fn take_io_cost(&mut self) -> Ticks {
        std::mem::take(&mut self.io_cost)
    }

    /// Lifetime `(reads, writes)` counters.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    fn charge_read(&mut self) {
        self.reads += 1;
        self.io_cost += self.params.read_cost;
    }

    fn charge_write(&mut self) {
        self.writes += 1;
        self.io_cost += self.params.write_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> BlockDevice {
        BlockDevice::new(8, DiskParams::default())
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut d = dev();
        let b = d.alloc(BlockContent::from_bytes(b"hello")).unwrap();
        let c = d.read(b).unwrap();
        assert_eq!(&c.data().unwrap()[..5], b"hello");
    }

    #[test]
    fn exhaustion_returns_enospc() {
        let mut d = BlockDevice::new(2, DiskParams::default());
        d.alloc(BlockContent::zeroed()).unwrap();
        d.alloc(BlockContent::zeroed()).unwrap();
        assert_eq!(d.alloc(BlockContent::zeroed()), Err(Errno::Enospc));
    }

    #[test]
    fn free_recycles_blocks() {
        let mut d = BlockDevice::new(1, DiskParams::default());
        let b = d.alloc(BlockContent::zeroed()).unwrap();
        d.free(b).unwrap();
        assert_eq!(d.free_blocks(), 1);
        assert!(d.alloc(BlockContent::zeroed()).is_ok());
    }

    #[test]
    fn double_free_is_an_error() {
        let mut d = dev();
        let b = d.alloc(BlockContent::zeroed()).unwrap();
        d.free(b).unwrap();
        assert_eq!(d.free(b), Err(Errno::Eio));
    }

    #[test]
    fn reading_unallocated_block_fails() {
        let mut d = dev();
        assert_eq!(d.read(3), Err(Errno::Eio));
    }

    #[test]
    fn io_cost_accumulates_and_drains() {
        let mut d = dev();
        let b = d.alloc(BlockContent::zeroed()).unwrap();
        d.read(b).unwrap();
        let cost = d.take_io_cost();
        assert_eq!(cost, Ticks::millis(50)); // one write + one read
        assert_eq!(d.take_io_cost(), Ticks::ZERO);
        assert_eq!(d.io_counts(), (1, 1));
    }

    #[test]
    fn page_overflow_guard() {
        let too_big = vec![0u8; PAGE_SIZE + 1];
        let r = std::panic::catch_unwind(|| BlockContent::from_bytes(&too_big));
        assert!(r.is_err());
    }
}
