//! Packs: physical containers of a logical filegroup.

use std::collections::{BTreeMap, BTreeSet};

use locus_types::{Errno, Ino, PackId, SysResult, Ticks};

use crate::disk::{BlockDevice, DiskParams, PAGE_SIZE};
use crate::inode::DiskInode;
use crate::superblock::Superblock;

/// One physical container: a slice of the filegroup's inode space, an
/// inode table, and a block device holding the stored files' pages.
#[derive(Debug)]
pub struct Pack {
    sb: Superblock,
    dev: BlockDevice,
    itable: BTreeMap<Ino, DiskInode>,
    free_inos: BTreeSet<u32>,
}

impl Pack {
    /// Creates an empty pack with `nblocks` of storage.
    pub fn new(pack: PackId, ino_range: core::ops::Range<u32>, nblocks: u32) -> Self {
        let free_inos = ino_range.clone().collect();
        Pack {
            sb: Superblock::new(pack, ino_range),
            dev: BlockDevice::new(nblocks, DiskParams::default()),
            itable: BTreeMap::new(),
            free_inos,
        }
    }

    /// This pack's identifier.
    pub fn id(&self) -> PackId {
        self.sb.pack
    }

    /// The pack index used as version-vector update origin.
    pub fn origin(&self) -> u32 {
        self.sb.pack.idx
    }

    /// The superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Allocates an inode number from this pack's private slice (§2.3.7).
    pub fn alloc_ino(&mut self) -> SysResult<Ino> {
        let n = *self.free_inos.iter().next().ok_or(Errno::Enospc)?;
        self.free_inos.remove(&n);
        Ok(Ino(n))
    }

    /// Returns an inode number to the free pool; only numbers in this
    /// pack's slice may be recycled here ("the inode can be reallocated by
    /// the site which has control of that inode", §2.3.7).
    pub fn release_ino(&mut self, ino: Ino) -> SysResult<()> {
        if !self.sb.ino_range.contains(&ino.0) {
            return Err(Errno::Eperm);
        }
        self.free_inos.insert(ino.0);
        Ok(())
    }

    /// Whether this pack controls allocation of `ino`.
    pub fn controls_ino(&self, ino: Ino) -> bool {
        self.sb.ino_range.contains(&ino.0)
    }

    /// Installs an inode under a caller-chosen number — used when a create
    /// or an update propagates in from another pack, and when building
    /// initial filesystem images.
    pub fn install_inode(&mut self, ino: Ino, inode: DiskInode) {
        self.free_inos.remove(&ino.0);
        self.itable.insert(ino, inode);
    }

    /// Whether a copy of `ino` is stored here (tombstones count: the pack
    /// has *seen* the file).
    pub fn stores(&self, ino: Ino) -> bool {
        self.itable.contains_key(&ino)
    }

    /// The stored inode, if any.
    pub fn inode(&self, ino: Ino) -> Option<&DiskInode> {
        self.itable.get(&ino)
    }

    /// All inode numbers present in this pack's table (live and deleted).
    pub fn inos(&self) -> impl Iterator<Item = Ino> + '_ {
        self.itable.keys().copied()
    }

    /// Reads logical page `lpn` of `ino`; holes and pages past EOF read
    /// as zeros.
    pub fn read_page(&mut self, ino: Ino, lpn: usize) -> SysResult<Vec<u8>> {
        let inode = self.itable.get(&ino).ok_or(Errno::Enoent)?;
        let pages = inode.pages.clone();
        match pages.lookup(lpn, &mut self.dev)? {
            None => Ok(vec![0u8; PAGE_SIZE]),
            Some(bno) => {
                let content = self.dev.read(bno)?;
                Ok(content.data()?.to_vec())
            }
        }
    }

    /// Reads the whole file as bytes (up to `size`).
    pub fn read_all(&mut self, ino: Ino) -> SysResult<Vec<u8>> {
        let size = self.itable.get(&ino).ok_or(Errno::Enoent)?.size as usize;
        let mut out = Vec::with_capacity(size);
        let npages = size.div_ceil(PAGE_SIZE);
        for lpn in 0..npages {
            let page = self.read_page(ino, lpn)?;
            let take = (size - lpn * PAGE_SIZE).min(PAGE_SIZE);
            out.extend_from_slice(&page[..take]);
        }
        Ok(out)
    }

    /// Removes the inode and frees all its blocks — the final reap after
    /// every storage site has seen a delete, or the removal of a stale
    /// replica. Does not recycle the inode number (see
    /// [`release_ino`](Self::release_ino)).
    pub fn drop_inode(&mut self, ino: Ino) -> SysResult<()> {
        let inode = self.itable.remove(&ino).ok_or(Errno::Enoent)?;
        let mapped = inode.pages.mapped_pages(&mut self.dev)?;
        for (_, bno) in mapped {
            self.dev.free(bno)?;
        }
        if let Some(ib) = inode.pages.indirect {
            self.dev.free(ib)?;
        }
        Ok(())
    }

    /// Drains accumulated disk I/O cost.
    pub fn take_io_cost(&mut self) -> Ticks {
        self.dev.take_io_cost()
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.dev.free_blocks()
    }

    /// Mutable access to the device, for the shadow machinery.
    pub(crate) fn dev_mut(&mut self) -> &mut BlockDevice {
        &mut self.dev
    }

    /// Mutable access to the inode table, for the shadow machinery.
    pub(crate) fn itable_mut(&mut self) -> &mut BTreeMap<Ino, DiskInode> {
        &mut self.itable
    }

    /// Bumps and returns the commit sequence number.
    pub(crate) fn next_commit_seq(&mut self) -> u64 {
        self.sb.commit_seq += 1;
        self.sb.commit_seq
    }

    /// Writes `data` as the complete contents of `ino` in one shadow
    /// commit, leaving the version vector untouched (caller manages it).
    /// Convenience for tests and image building.
    pub fn write_all(&mut self, ino: Ino, data: &[u8]) -> SysResult<()> {
        let mut sess = crate::shadow::ShadowSession::begin(self, ino)?;
        let npages = data.len().div_ceil(PAGE_SIZE);
        for lpn in 0..npages {
            let chunk = &data[lpn * PAGE_SIZE..((lpn + 1) * PAGE_SIZE).min(data.len())];
            sess.write_page(self, lpn, chunk)?;
        }
        sess.truncate_pages(self, npages)?;
        sess.set_size(data.len() as u64);
        let vv = sess.working().vv.clone();
        sess.commit(self, vv)?;
        Ok(())
    }

    /// Verifies internal allocation consistency: every block referenced by
    /// an inode is allocated, and no block is referenced twice. Used by
    /// failure-injection tests to prove crashes never corrupt the pack.
    pub fn fsck(&mut self) -> SysResult<()> {
        let mut seen = BTreeSet::new();
        let inodes: Vec<_> = self.itable.values().cloned().collect();
        for inode in inodes {
            let mapped = inode.pages.mapped_pages(&mut self.dev)?;
            for (_, bno) in mapped {
                if !self.dev.is_allocated(bno) {
                    return Err(Errno::Eio);
                }
                if !seen.insert(bno) {
                    return Err(Errno::Eio);
                }
            }
            if let Some(ib) = inode.pages.indirect {
                if !self.dev.is_allocated(ib) || !seen.insert(ib) {
                    return Err(Errno::Eio);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_types::{FileType, FilegroupId, Perms};

    fn pack() -> Pack {
        Pack::new(PackId::new(FilegroupId(0), 0), 1..50, 256)
    }

    #[test]
    fn ino_allocation_stays_in_slice() {
        let mut p = Pack::new(PackId::new(FilegroupId(0), 1), 50..60, 64);
        for _ in 0..10 {
            let ino = p.alloc_ino().unwrap();
            assert!((50..60).contains(&ino.0));
        }
        assert_eq!(p.alloc_ino(), Err(Errno::Enospc));
    }

    #[test]
    fn release_rejects_foreign_ino() {
        let mut p = Pack::new(PackId::new(FilegroupId(0), 1), 50..60, 64);
        assert_eq!(p.release_ino(Ino(3)), Err(Errno::Eperm));
        assert!(p.release_ino(Ino(55)).is_ok());
    }

    #[test]
    fn write_all_read_all_roundtrip() {
        let mut p = pack();
        let ino = p.alloc_ino().unwrap();
        p.install_inode(
            ino,
            DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0),
        );
        let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        p.write_all(ino, &data).unwrap();
        assert_eq!(p.read_all(ino).unwrap(), data);
        p.fsck().unwrap();
    }

    #[test]
    fn shrinking_rewrite_frees_blocks() {
        let mut p = pack();
        let ino = p.alloc_ino().unwrap();
        p.install_inode(
            ino,
            DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0),
        );
        p.write_all(ino, &vec![7u8; 5 * PAGE_SIZE]).unwrap();
        let free_after_big = p.free_blocks();
        p.write_all(ino, b"tiny").unwrap();
        assert!(p.free_blocks() > free_after_big);
        assert_eq!(p.read_all(ino).unwrap(), b"tiny");
        p.fsck().unwrap();
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut p = pack();
        let ino = p.alloc_ino().unwrap();
        p.install_inode(
            ino,
            DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0),
        );
        assert_eq!(p.read_page(ino, 3).unwrap(), vec![0u8; PAGE_SIZE]);
    }

    #[test]
    fn drop_inode_frees_everything() {
        let mut p = pack();
        let ino = p.alloc_ino().unwrap();
        p.install_inode(
            ino,
            DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0),
        );
        let before = p.free_blocks();
        p.write_all(ino, &vec![1u8; 12 * PAGE_SIZE]).unwrap(); // uses indirect
        p.drop_inode(ino).unwrap();
        assert_eq!(p.free_blocks(), before);
        assert!(!p.stores(ino));
    }

    #[test]
    fn read_missing_inode_is_enoent() {
        let mut p = pack();
        assert_eq!(p.read_page(Ino(9), 0), Err(Errno::Enoent));
    }
}
