//! Pack superblocks.

use core::ops::Range;

use locus_types::{FilegroupId, PackId};

/// Metadata identifying a pack and its slice of the inode space.
///
/// "The entire inode space of a filegroup is partitioned so that each
/// physical container for the filegroup has a collection of inode numbers
/// that it can allocate" (§2.3.7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Which pack this is.
    pub pack: PackId,
    /// The inode numbers this pack may allocate.
    pub ino_range: Range<u32>,
    /// Monotonic count of commits performed at this pack; the origin slot
    /// bumped in version vectors is the pack index.
    pub commit_seq: u64,
}

impl Superblock {
    /// Builds a superblock.
    pub fn new(pack: PackId, ino_range: Range<u32>) -> Self {
        Superblock {
            pack,
            ino_range,
            commit_seq: 0,
        }
    }

    /// The filegroup this pack belongs to.
    pub fn filegroup(&self) -> FilegroupId {
        self.pack.fg
    }

    /// Splits an inode space of `total` inodes evenly across `npacks`
    /// packs, giving pack `idx` its slice. Inode 0 is never allocated
    /// (reserved, as in Unix); inode 1 is the conventional root directory
    /// and always belongs to pack 0's slice.
    pub fn partition_ino_space(total: u32, npacks: u32, idx: u32) -> Range<u32> {
        debug_assert!(idx < npacks);
        let usable = total - 1; // ino 0 reserved
        let per = usable / npacks;
        let lo = 1 + idx * per;
        let hi = if idx == npacks - 1 { total } else { lo + per };
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ino_space_partition_is_disjoint_and_covering() {
        let total = 100;
        let npacks = 3;
        let mut seen = vec![false; total as usize];
        for idx in 0..npacks {
            for i in Superblock::partition_ino_space(total, npacks, idx) {
                assert!(!seen[i as usize], "ino {i} allocated to two packs");
                seen[i as usize] = true;
            }
        }
        assert!(!seen[0], "ino 0 must stay reserved");
        assert!(
            seen[1..].iter().all(|&s| s),
            "every ino must be allocatable"
        );
    }

    #[test]
    fn root_ino_belongs_to_pack_zero() {
        let r = Superblock::partition_ino_space(64, 4, 0);
        assert!(r.contains(&1));
    }
}
