//! Disk inodes and per-file page tables.
//!
//! The inode is "a collection of information about the file" (§4.4) and is
//! treated "as part of the file from the recovery point of view": the
//! version vector lives in the inode and is committed with it. The page
//! table has direct slots plus one indirect block, reproducing §2.3.6's
//! "large files that are structured through indirect pages".

use locus_types::{Errno, FileType, Perms, SysResult, Ticks, VersionVector};

use crate::disk::{BlockContent, BlockDevice, BlockNo, PAGE_SIZE};

/// Number of direct page slots in an inode.
pub const NDIRECT: usize = 10;

/// Entries in one indirect block.
pub const NINDIRECT: usize = PAGE_SIZE / 4;

/// The per-file map from logical page number to physical block.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PageTable {
    /// Direct block pointers.
    pub direct: [Option<BlockNo>; NDIRECT],
    /// One single-indirect block holding further pointers.
    pub indirect: Option<BlockNo>,
}

impl PageTable {
    /// Largest representable logical page number + 1.
    pub const MAX_PAGES: usize = NDIRECT + NINDIRECT;

    /// Looks up the physical block of logical page `lpn`, reading the
    /// indirect block from `dev` if needed. `Ok(None)` means a hole.
    pub fn lookup(&self, lpn: usize, dev: &mut BlockDevice) -> SysResult<Option<BlockNo>> {
        if lpn < NDIRECT {
            return Ok(self.direct[lpn]);
        }
        let idx = lpn - NDIRECT;
        if idx >= NINDIRECT {
            return Err(Errno::Einval);
        }
        match self.indirect {
            None => Ok(None),
            Some(ib) => match dev.read(ib)? {
                BlockContent::Index(table) => Ok(table.get(idx).copied().flatten()),
                BlockContent::Data(_) => Err(Errno::Eio),
            },
        }
    }

    /// Points logical page `lpn` at `bno`, allocating or updating the
    /// indirect block as required. Returns the previous mapping.
    pub fn map(
        &mut self,
        lpn: usize,
        bno: Option<BlockNo>,
        dev: &mut BlockDevice,
    ) -> SysResult<Option<BlockNo>> {
        if lpn < NDIRECT {
            return Ok(std::mem::replace(&mut self.direct[lpn], bno));
        }
        let idx = lpn - NDIRECT;
        if idx >= NINDIRECT {
            return Err(Errno::Einval);
        }
        match self.indirect {
            None => {
                if bno.is_none() {
                    return Ok(None);
                }
                let mut table = vec![None; NINDIRECT];
                table[idx] = bno;
                self.indirect = Some(dev.alloc(BlockContent::Index(table))?);
                Ok(None)
            }
            Some(ib) => {
                let mut table = match dev.read(ib)? {
                    BlockContent::Index(t) => t,
                    BlockContent::Data(_) => return Err(Errno::Eio),
                };
                let old = std::mem::replace(&mut table[idx], bno);
                dev.write(ib, BlockContent::Index(table))?;
                Ok(old)
            }
        }
    }

    /// All mapped `(lpn, block)` pairs.
    pub fn mapped_pages(&self, dev: &mut BlockDevice) -> SysResult<Vec<(usize, BlockNo)>> {
        let mut out = Vec::new();
        for (lpn, slot) in self.direct.iter().enumerate() {
            if let Some(b) = slot {
                out.push((lpn, *b));
            }
        }
        if let Some(ib) = self.indirect {
            match dev.read(ib)? {
                BlockContent::Index(table) => {
                    for (idx, slot) in table.iter().enumerate() {
                        if let Some(b) = slot {
                            out.push((NDIRECT + idx, *b));
                        }
                    }
                }
                BlockContent::Data(_) => return Err(Errno::Eio),
            }
        }
        Ok(out)
    }
}

/// The on-disk inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiskInode {
    /// File type, used by recovery to pick a merge strategy (§4.3).
    pub ftype: FileType,
    /// Permission bits.
    pub perms: Perms,
    /// Owning user (notified by mail on unresolvable conflicts, §4.6).
    pub owner: u32,
    /// File length in bytes.
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// The copy's version vector (§2.2.2).
    pub vv: VersionVector,
    /// Page table.
    pub pages: PageTable,
    /// Modification time (virtual).
    pub mtime: Ticks,
    /// Set when the file was deleted: the tombstone lets delete propagate
    /// to other packs at merge (§4.4 rules b/d).
    pub deleted: bool,
    /// Set when a merge detected an unresolvable conflict; "normal
    /// attempts to access them fail" (§4.6).
    pub conflict: bool,
    /// Pack indexes that store this file's *data* — the CSS "has a list of
    /// packs which store the file" because inode information is replicated
    /// in every container (§2.3.3). Replicated with the inode.
    pub replicas: Vec<u32>,
    /// Whether *this copy* holds the data pages, or is metadata only
    /// (containers store "only a subset of the files", §2.2.2).
    pub data_here: bool,
}

impl DiskInode {
    /// A fresh empty inode of the given type.
    pub fn new(ftype: FileType, perms: Perms, owner: u32) -> Self {
        DiskInode {
            ftype,
            perms,
            owner,
            size: 0,
            nlink: 1,
            vv: VersionVector::new(),
            pages: PageTable::default(),
            mtime: Ticks::ZERO,
            deleted: false,
            conflict: false,
            replicas: Vec::new(),
            data_here: true,
        }
    }

    /// Number of logical pages covered by `size`.
    pub fn page_count(&self) -> usize {
        self.size.div_ceil(PAGE_SIZE as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;

    fn dev() -> BlockDevice {
        BlockDevice::new(1024, DiskParams::default())
    }

    #[test]
    fn direct_map_and_lookup() {
        let mut d = dev();
        let mut pt = PageTable::default();
        let b = d.alloc(BlockContent::zeroed()).unwrap();
        assert_eq!(pt.map(3, Some(b), &mut d).unwrap(), None);
        assert_eq!(pt.lookup(3, &mut d).unwrap(), Some(b));
        assert_eq!(pt.lookup(4, &mut d).unwrap(), None);
    }

    #[test]
    fn indirect_pages_allocate_index_block() {
        let mut d = dev();
        let mut pt = PageTable::default();
        let b = d.alloc(BlockContent::zeroed()).unwrap();
        let lpn = NDIRECT + 5;
        pt.map(lpn, Some(b), &mut d).unwrap();
        assert!(pt.indirect.is_some());
        assert_eq!(pt.lookup(lpn, &mut d).unwrap(), Some(b));
        assert_eq!(pt.lookup(NDIRECT, &mut d).unwrap(), None);
    }

    #[test]
    fn map_returns_previous_binding() {
        let mut d = dev();
        let mut pt = PageTable::default();
        let b1 = d.alloc(BlockContent::zeroed()).unwrap();
        let b2 = d.alloc(BlockContent::zeroed()).unwrap();
        pt.map(0, Some(b1), &mut d).unwrap();
        assert_eq!(pt.map(0, Some(b2), &mut d).unwrap(), Some(b1));
    }

    #[test]
    fn out_of_range_page_is_einval() {
        let mut d = dev();
        let pt = PageTable::default();
        assert_eq!(pt.lookup(PageTable::MAX_PAGES, &mut d), Err(Errno::Einval));
    }

    #[test]
    fn mapped_pages_walks_both_levels() {
        let mut d = dev();
        let mut pt = PageTable::default();
        let b1 = d.alloc(BlockContent::zeroed()).unwrap();
        let b2 = d.alloc(BlockContent::zeroed()).unwrap();
        pt.map(1, Some(b1), &mut d).unwrap();
        pt.map(NDIRECT + 2, Some(b2), &mut d).unwrap();
        let pages = pt.mapped_pages(&mut d).unwrap();
        assert_eq!(pages, vec![(1, b1), (NDIRECT + 2, b2)]);
    }

    #[test]
    fn page_count_rounds_up() {
        let mut ino = DiskInode::new(FileType::Untyped, Perms::FILE_DEFAULT, 0);
        ino.size = 1;
        assert_eq!(ino.page_count(), 1);
        ino.size = PAGE_SIZE as u64;
        assert_eq!(ino.page_count(), 1);
        ino.size = PAGE_SIZE as u64 + 1;
        assert_eq!(ino.page_count(), 2);
    }
}
