//! Per-site storage substrate: block devices, packs (physical containers
//! of a logical filegroup), disk inodes and the shadow-page atomic commit.
//!
//! The unit of replication in LOCUS is the file, not the filegroup: "any
//! physical container is incomplete; it stores only a subset of the files
//! in the subtree to which it corresponds" (§2.2.2). A [`Pack`] is one such
//! container. Each pack owns a private slice of the filegroup's inode
//! number space "to facilitate inode allocation and allow operation when
//! not all sites are accessible" (§2.3.7).
//!
//! File modification is transactional at the granularity of one file: all
//! changed pages are *shadow pages* until commit, and "the atomic commit
//! operation consists merely of moving the incore inode information to the
//! disk inode" (§2.3.6). [`shadow::ShadowSession`] reproduces that design,
//! including in-place reuse of a page already shadowed once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod disk;
pub mod inode;
pub mod pack;
pub mod shadow;
pub mod superblock;

pub use buffer::{BufferCache, CacheStats};
pub use disk::{BlockContent, BlockDevice, BlockNo, DiskParams, PAGE_SIZE};
pub use inode::{DiskInode, PageTable, NDIRECT};
pub use pack::Pack;
pub use shadow::ShadowSession;
pub use superblock::Superblock;
