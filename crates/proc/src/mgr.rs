//! The process manager: fork/exec/run, signals, wait/exit, and §5.6
//! failure handling.

use std::cell::RefCell;
use std::collections::BTreeMap;

use locus_fs::ops::fd as fsfd;
use locus_fs::ops::namei;
use locus_fs::proto::Fd;
use locus_fs::{FsCluster, ProcFsCtx};
use locus_net::RpcEngine;
use locus_storage::PAGE_SIZE;
use locus_types::{Errno, OpenMode, Pid, SiteId, SysResult, Ticks};

use crate::process::{ExitStatus, ProcError, ProcState, Process, Signal};
use crate::proto::{ProcMsg, CTRL_BYTES};

/// CPU cost of setting up a process body.
const SPAWN_CPU: Ticks = Ticks::micros(3_000);

/// The network-wide process table and process-level system calls.
///
/// One manager serves the whole simulated network; remote operations
/// charge message costs on the filesystem cluster's network, so process
/// traffic appears in the same statistics and traces.
pub struct ProcMgr {
    inner: RefCell<Inner>,
}

struct Inner {
    procs: BTreeMap<Pid, Process>,
    next_pid: u64,
}

impl Default for ProcMgr {
    fn default() -> Self {
        ProcMgr::new()
    }
}

impl ProcMgr {
    /// An empty process table.
    pub fn new() -> Self {
        ProcMgr {
            inner: RefCell::new(Inner {
                procs: BTreeMap::new(),
                next_pid: 1,
            }),
        }
    }

    /// Creates an initial (shell-like) process on `site`.
    pub fn spawn_init(&self, fsc: &FsCluster, site: SiteId, uid: u32) -> SysResult<Pid> {
        if !fsc.net().is_up(site) {
            return Err(Errno::Esitedown);
        }
        let root = fsc.kernel(site).mount.root()?;
        let machine = fsc.kernel(site).machine;
        let mut ctx = ProcFsCtx::new(root, machine);
        ctx.uid = uid;
        let mut g = self.inner.borrow_mut();
        let pid = Pid(g.next_pid);
        g.next_pid += 1;
        g.procs.insert(
            pid,
            Process {
                pid,
                parent: None,
                site,
                ctx,
                fds: BTreeMap::new(),
                advice: Vec::new(),
                state: ProcState::Running,
                pending: Vec::new(),
                err_info: None,
                load_module: None,
                image_pages: 16,
                children: Vec::new(),
            },
        );
        Ok(pid)
    }

    /// Immutable snapshot of a process.
    pub fn get(&self, pid: Pid) -> SysResult<Process> {
        self.inner
            .borrow()
            .procs
            .get(&pid)
            .cloned()
            .ok_or(Errno::Esrch)
    }

    /// Runs `f` on the process.
    pub fn with<R>(&self, pid: Pid, f: impl FnOnce(&mut Process) -> R) -> SysResult<R> {
        let mut g = self.inner.borrow_mut();
        let p = g.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        Ok(f(p))
    }

    /// All live processes on `site`.
    pub fn procs_on(&self, site: SiteId) -> Vec<Pid> {
        self.inner
            .borrow()
            .procs
            .values()
            .filter(|p| p.site == site && p.alive())
            .map(|p| p.pid)
            .collect()
    }

    /// The execution site of `pid`.
    pub fn site_of(&self, pid: Pid) -> SysResult<SiteId> {
        Ok(self.get(pid)?.site)
    }

    /// Moves the processes executing on `sites` into a shard manager for
    /// one parallel epoch.  The shard inherits the pid allocator cursor so
    /// its view matches the parent's, but epoch ops must never allocate
    /// pids: [`ProcMgr::absorb`] asserts the cursor is unchanged.
    pub fn split_sites(&self, sites: &std::collections::BTreeSet<SiteId>) -> ProcMgr {
        let mut g = self.inner.borrow_mut();
        let moved: Vec<Pid> = g
            .procs
            .values()
            .filter(|p| sites.contains(&p.site))
            .map(|p| p.pid)
            .collect();
        let mut procs = BTreeMap::new();
        for pid in moved {
            let p = g.procs.remove(&pid).expect("pid listed but not present");
            procs.insert(pid, p);
        }
        ProcMgr {
            inner: RefCell::new(Inner {
                procs,
                next_pid: g.next_pid,
            }),
        }
    }

    /// Returns a shard's processes after a parallel epoch.
    pub fn absorb(&self, shard: ProcMgr) {
        let shard = shard.inner.into_inner();
        let mut g = self.inner.borrow_mut();
        assert_eq!(
            shard.next_pid, g.next_pid,
            "an epoch shard allocated a pid; spawning ops must run serially"
        );
        for (pid, p) in shard.procs {
            let prev = g.procs.insert(pid, p);
            assert!(
                prev.is_none(),
                "absorbed a process into an occupied pid slot (overlapping shards)"
            );
        }
    }

    /// Sets the advice list controlling where new images execute ("that
    /// information, currently a structured advice list, can be set
    /// dynamically", §3.1).
    pub fn set_advice(&self, pid: Pid, advice: Vec<SiteId>) -> SysResult<()> {
        self.with(pid, |p| p.advice = advice)
    }

    /// Sets the default replication factor for files the process creates
    /// ("a new system call has been added to modify and interrogate this
    /// number", §2.3.7).
    pub fn set_ncopies(&self, pid: Pid, n: u32) -> SysResult<()> {
        self.with(pid, |p| p.ctx.ncopies = n)
    }

    /// `fork(2)`, possibly to a remote site. "In the case of a fork, the
    /// process address space, both code and data, must be made a copy of
    /// the parents'… the relevant set of process pages are sent to the new
    /// process site" (§3.1).
    pub fn fork(&self, fsc: &FsCluster, parent: Pid, to: Option<SiteId>) -> SysResult<Pid> {
        let at = self.site_of(parent).unwrap_or(SiteId(0));
        proc_span(fsc, "fork", at, || self.fork_inner(fsc, parent, to))
    }

    fn fork_inner(&self, fsc: &FsCluster, parent: Pid, to: Option<SiteId>) -> SysResult<Pid> {
        let psnap = self.get(parent)?;
        if !psnap.alive() {
            return Err(Errno::Esrch);
        }
        let dest = to.unwrap_or(psnap.site);
        fsc.net().charge_cpu(SPAWN_CPU);
        if dest != psnap.site {
            // One RPC allocates the process body; serving it streams the
            // address-space pages to the new site, so the wire sees
            // FORK req · PROC page × N · FORK resp exactly as §3.1
            // describes — now with the shared retry/backoff underneath.
            let engine = RpcEngine::new(fsc.retry_policy());
            let pages = psnap.image_pages;
            engine
                .rpc(
                    fsc.net(),
                    psnap.site,
                    dest,
                    ProcMsg::ForkReq,
                    |_: &SysResult<()>| CTRL_BYTES,
                    |_| {
                        for _ in 0..pages {
                            engine
                                .one_way(fsc.net(), psnap.site, dest, ProcMsg::ProcPage, |_| ())
                                .map_err(|_| Errno::Esitedown)?;
                        }
                        Ok(())
                    },
                )
                .map_err(|_| Errno::Esitedown)??;
        }

        // Child inherits the environment: context, advice, descriptors
        // (shared, with offset tokens when crossing sites).
        let mut child_fds = BTreeMap::new();
        for (&no, &kfd) in &psnap.fds {
            let shared_fd = self.share_and_clone(fsc, psnap.site, kfd, dest)?;
            child_fds.insert(no, shared_fd);
        }
        let mut ctx = psnap.ctx.clone();
        ctx.contexts = vec![fsc.kernel(dest).machine.context_name().to_owned()];

        let mut g = self.inner.borrow_mut();
        let pid = Pid(g.next_pid);
        g.next_pid += 1;
        g.procs.insert(
            pid,
            Process {
                pid,
                parent: Some(parent),
                site: dest,
                ctx,
                fds: child_fds,
                advice: psnap.advice.clone(),
                state: ProcState::Running,
                pending: Vec::new(),
                err_info: None,
                load_module: psnap.load_module.clone(),
                image_pages: psnap.image_pages,
                children: Vec::new(),
            },
        );
        g.procs
            .get_mut(&parent)
            .expect("checked above")
            .children
            .push(pid);
        Ok(pid)
    }

    /// Shares a kernel descriptor and clones it to `dest` (no-op clone if
    /// local — the shared group still guarantees a single offset).
    fn share_and_clone(
        &self,
        fsc: &FsCluster,
        from: SiteId,
        kfd: Fd,
        dest: SiteId,
    ) -> SysResult<Fd> {
        fsfd::share_fd(fsc, from, kfd)?;
        if dest == from {
            Ok(kfd)
        } else {
            fsfd::clone_fd_to(fsc, from, kfd, dest)
        }
    }

    /// `exec(2)`: installs a new load module, choosing the execution site
    /// from the advice list. "If exec is to occur remotely, then the
    /// process is effectively moved at that time. By doing so it is
    /// feasible to support remote execution of programs intended for
    /// dissimilar cpu types" (§3.1).
    pub fn exec(&self, fsc: &FsCluster, pid: Pid, path: &str) -> SysResult<()> {
        let snap = self.get(pid)?;
        if !snap.alive() {
            return Err(Errno::Esrch);
        }
        let dest = self.choose_exec_site(fsc, &snap, path)?;
        if dest != snap.site {
            RpcEngine::new(fsc.retry_policy())
                .rpc(
                    fsc.net(),
                    snap.site,
                    dest,
                    ProcMsg::ExecReq,
                    |_: &()| CTRL_BYTES,
                    |_| (),
                )
                .map_err(|_| Errno::Esitedown)?;
        }

        // Read the machine-appropriate load module through the hidden
        // directory mechanism, *with the destination's context*.
        let mut ctx = snap.ctx.clone();
        ctx.contexts = vec![fsc.kernel(dest).machine.context_name().to_owned()];
        let module_fd = fsfd::open(fsc, dest, &ctx, path, OpenMode::Read)?;
        let image = fsfd::read(fsc, dest, module_fd, 1 << 20)?;
        fsfd::close(fsc, dest, module_fd)?;
        fsc.net().charge_cpu(SPAWN_CPU);

        // Moving the process: descriptors follow it (clone to dest).
        let mut moved_fds = snap.fds.clone();
        if dest != snap.site {
            for (_, kfd) in moved_fds.iter_mut() {
                *kfd = self.share_and_clone(fsc, snap.site, *kfd, dest)?;
            }
        }

        self.with(pid, |p| {
            p.site = dest;
            p.ctx = ctx;
            p.fds = moved_fds;
            p.load_module = Some(path.to_owned());
            p.image_pages = image.len().div_ceil(PAGE_SIZE).max(1);
        })
    }

    /// The `run` call: "similar to the effect of a fork followed by an
    /// exec … Run avoids the copy of the parent process image" (§3.1).
    /// Returns the new process.
    pub fn run(
        &self,
        fsc: &FsCluster,
        parent: Pid,
        path: &str,
        advice: Vec<SiteId>,
    ) -> SysResult<Pid> {
        let psnap = self.get(parent)?;
        if !psnap.alive() {
            return Err(Errno::Esrch);
        }
        fsc.net().charge_cpu(SPAWN_CPU);
        // Local fork without the image copy…
        let mut child_fds = BTreeMap::new();
        let mut probe = psnap.clone();
        probe.advice = if advice.is_empty() {
            psnap.advice.clone()
        } else {
            advice.clone()
        };
        // …then a remote exec at the chosen site.
        let dest = self.choose_exec_site(fsc, &probe, path)?;
        if dest != psnap.site {
            RpcEngine::new(fsc.retry_policy())
                .rpc(
                    fsc.net(),
                    psnap.site,
                    dest,
                    ProcMsg::RunReq,
                    |_: &()| CTRL_BYTES,
                    |_| (),
                )
                .map_err(|_| Errno::Esitedown)?;
        }
        for (&no, &kfd) in &psnap.fds {
            let shared_fd = self.share_and_clone(fsc, psnap.site, kfd, dest)?;
            child_fds.insert(no, shared_fd);
        }
        let mut ctx = psnap.ctx.clone();
        ctx.contexts = vec![fsc.kernel(dest).machine.context_name().to_owned()];
        let module_fd = fsfd::open(fsc, dest, &ctx, path, OpenMode::Read)?;
        let image = fsfd::read(fsc, dest, module_fd, 1 << 20)?;
        fsfd::close(fsc, dest, module_fd)?;

        let mut g = self.inner.borrow_mut();
        let pid = Pid(g.next_pid);
        g.next_pid += 1;
        g.procs.insert(
            pid,
            Process {
                pid,
                parent: Some(parent),
                site: dest,
                ctx,
                fds: child_fds,
                advice,
                state: ProcState::Running,
                pending: Vec::new(),
                err_info: None,
                load_module: Some(path.to_owned()),
                image_pages: image.len().div_ceil(PAGE_SIZE).max(1),
                children: Vec::new(),
            },
        );
        g.procs
            .get_mut(&parent)
            .expect("checked above")
            .children
            .push(pid);
        Ok(pid)
    }

    /// Picks the execution site: advice entries are tried in order; a site
    /// qualifies if it is reachable and the load module resolves under its
    /// machine context (the heterogeneous-CPU rule of §2.4.1/§3.1). With
    /// no advice, execution stays local ("LOCUS executes programs locally
    /// as the default", §6).
    fn choose_exec_site(&self, fsc: &FsCluster, p: &Process, path: &str) -> SysResult<SiteId> {
        let mut candidates = p.advice.clone();
        if candidates.is_empty() {
            candidates.push(p.site);
        }
        for site in candidates {
            if site != p.site && !fsc.net().reachable(p.site, site) {
                continue;
            }
            if !fsc.net().is_up(site) {
                continue;
            }
            let mut ctx = p.ctx.clone();
            ctx.contexts = vec![fsc.kernel(site).machine.context_name().to_owned()];
            if namei::resolve(fsc, site, &ctx, path).is_ok() {
                return Ok(site);
            }
        }
        Err(Errno::Enoent)
    }

    /// Opens a file on behalf of a process, recording it in the process
    /// descriptor table. Returns the process-level descriptor number.
    pub fn popen(&self, fsc: &FsCluster, pid: Pid, path: &str, mode: OpenMode) -> SysResult<u32> {
        let snap = self.get(pid)?;
        let kfd = fsfd::open(fsc, snap.site, &snap.ctx, path, mode)?;
        self.with(pid, |p| {
            let no = p.next_fd_no();
            p.fds.insert(no, kfd);
            no
        })
    }

    /// Creates and opens a file on behalf of a process.
    pub fn pcreat(&self, fsc: &FsCluster, pid: Pid, path: &str) -> SysResult<u32> {
        let snap = self.get(pid)?;
        let kfd = fsfd::creat(
            fsc,
            snap.site,
            &snap.ctx,
            path,
            locus_types::FileType::Untyped,
            locus_types::Perms::FILE_DEFAULT,
        )?;
        self.with(pid, |p| {
            let no = p.next_fd_no();
            p.fds.insert(no, kfd);
            no
        })
    }

    /// Reads through a process descriptor.
    pub fn pread(&self, fsc: &FsCluster, pid: Pid, no: u32, n: usize) -> SysResult<Vec<u8>> {
        let snap = self.get(pid)?;
        let kfd = *snap.fds.get(&no).ok_or(Errno::Ebadf)?;
        match fsfd::read(fsc, snap.site, kfd, n) {
            Err(Errno::Epipe) => Err(Errno::Epipe),
            other => other,
        }
    }

    /// Writes through a process descriptor; a broken pipe raises SIGPIPE
    /// exactly as on one machine (§2.4.2).
    pub fn pwrite(&self, fsc: &FsCluster, pid: Pid, no: u32, data: &[u8]) -> SysResult<usize> {
        let snap = self.get(pid)?;
        let kfd = *snap.fds.get(&no).ok_or(Errno::Ebadf)?;
        match fsfd::write(fsc, snap.site, kfd, data) {
            Err(Errno::Epipe) => {
                self.with(pid, |p| p.pending.push(Signal::Sigpipe))?;
                Err(Errno::Epipe)
            }
            other => other,
        }
    }

    /// Closes a process descriptor.
    pub fn pclose(&self, fsc: &FsCluster, pid: Pid, no: u32) -> SysResult<()> {
        let snap = self.get(pid)?;
        let kfd = *snap.fds.get(&no).ok_or(Errno::Ebadf)?;
        fsfd::close(fsc, snap.site, kfd)?;
        self.with(pid, |p| {
            p.fds.remove(&no);
        })
    }

    /// Sends a signal; crossing a machine boundary costs one message and
    /// has identical semantics (§2.4.2, §3.2).
    pub fn kill(&self, fsc: &FsCluster, from: Pid, target: Pid, sig: Signal) -> SysResult<()> {
        let from_site = self.site_of(from)?;
        proc_span(fsc, "kill", from_site, || {
            self.kill_inner(fsc, from_site, target, sig)
        })
    }

    fn kill_inner(
        &self,
        fsc: &FsCluster,
        from_site: SiteId,
        target: Pid,
        sig: Signal,
    ) -> SysResult<()> {
        let tsnap = self.get(target)?;
        if !tsnap.alive() {
            return Err(Errno::Esrch);
        }
        if tsnap.site != from_site {
            RpcEngine::new(fsc.retry_policy())
                .one_way(fsc.net(), from_site, tsnap.site, ProcMsg::Signal, |_| ())
                .map_err(|_| Errno::Esitedown)?;
        }
        self.with(target, |p| p.pending.push(sig))?;
        if sig == Signal::Sigkill {
            self.exit_with(fsc, target, ExitStatus::Signaled(Signal::Sigkill))?;
        }
        Ok(())
    }

    /// Takes (drains) a process's pending signals.
    pub fn take_signals(&self, pid: Pid) -> SysResult<Vec<Signal>> {
        self.with(pid, |p| std::mem::take(&mut p.pending))
    }

    /// Interrogates the distribution-error detail (§3.3's "new system
    /// call"), clearing it.
    pub fn take_err_info(&self, pid: Pid) -> SysResult<Option<ProcError>> {
        self.with(pid, |p| p.err_info.take())
    }

    /// Normal exit.
    pub fn exit(&self, fsc: &FsCluster, pid: Pid, code: i32) -> SysResult<()> {
        let at = self.site_of(pid).unwrap_or(SiteId(0));
        proc_span(fsc, "exit", at, || {
            self.exit_with(fsc, pid, ExitStatus::Exited(code))
        })
    }

    fn exit_with(&self, fsc: &FsCluster, pid: Pid, status: ExitStatus) -> SysResult<()> {
        let snap = self.get(pid)?;
        if !snap.alive() {
            return Ok(());
        }
        // Close all descriptors (committing written files, §2.3.6).
        for (_, kfd) in snap.fds.iter() {
            let _ = fsfd::close(fsc, snap.site, *kfd);
        }
        self.with(pid, |p| {
            p.fds.clear();
            p.state = ProcState::Zombie(status);
        })?;
        // Notify the parent (SIGCHLD), across the net if needed.
        if let Some(parent) = snap.parent {
            if let Ok(psite) = self.site_of(parent) {
                if psite != snap.site {
                    // Best-effort notification, but no longer silent: the
                    // engine retries under the cluster policy and records
                    // an abandoned send as a one-way loss for recovery's
                    // accounting (§4).
                    let _ = RpcEngine::new(fsc.retry_policy()).one_way(
                        fsc.net(),
                        snap.site,
                        psite,
                        ProcMsg::ExitNotify,
                        |_| (),
                    );
                }
                let _ = self.with(parent, |p| p.pending.push(Signal::Sigchld));
            }
        }
        Ok(())
    }

    /// `wait(2)`: reaps one zombie child. `Ok(None)` means children exist
    /// but none has exited yet; `Echild` means there is nothing to wait
    /// for.
    pub fn wait(&self, pid: Pid) -> SysResult<Option<(Pid, ExitStatus)>> {
        let snap = self.get(pid)?;
        if snap.children.is_empty() {
            return Err(Errno::Echild);
        }
        let mut g = self.inner.borrow_mut();
        let zombie = snap.children.iter().find_map(|c| {
            g.procs.get(c).and_then(|p| match p.state {
                ProcState::Zombie(st) => Some((p.pid, st)),
                ProcState::Running => None,
            })
        });
        match zombie {
            Some((cpid, st)) => {
                g.procs.remove(&cpid);
                let parent = g.procs.get_mut(&pid).ok_or(Errno::Esrch)?;
                parent.children.retain(|&c| c != cpid);
                Ok(Some((cpid, st)))
            }
            None => Ok(None),
        }
    }

    /// §5.6 cleanup, "interacting processes" table: when `failed` leaves
    /// the partition of `observer_partition`, every process on a surviving
    /// site with a child there gets an error signal and err-info; children
    /// of parents on the failed site are notified likewise; processes *on*
    /// the failed site become zombies with [`ExitStatus::SiteFailed`].
    pub fn handle_site_failure(&self, fsc: &FsCluster, failed: SiteId) -> usize {
        let mut affected = 0;
        let pids: Vec<Pid> = self.inner.borrow().procs.keys().copied().collect();
        for pid in pids {
            let Ok(snap) = self.get(pid) else { continue };
            if snap.site == failed && snap.alive() {
                let _ = self.with(pid, |p| p.state = ProcState::Zombie(ExitStatus::SiteFailed));
                affected += 1;
                continue;
            }
            if !snap.alive() {
                continue;
            }
            // Parent loses a child: "when the child's machine fails, the
            // parent receives an error signal" (§3.3).
            for &c in &snap.children {
                if let Ok(cs) = self.get(c) {
                    if cs.site == failed {
                        let _ = self.with(pid, |p| {
                            p.pending.push(Signal::Sigchld);
                            p.err_info = Some(ProcError::ChildSiteFailed {
                                child: c,
                                site: failed,
                            });
                        });
                        affected += 1;
                    }
                }
            }
            // Child loses its parent: "when the parent's machine fails,
            // the child is notified in a similar manner" (§3.3).
            if let Some(parent) = snap.parent {
                if let Ok(ps) = self.get(parent) {
                    if ps.site == failed {
                        let _ = self.with(pid, |p| {
                            p.pending.push(Signal::Sighup);
                            p.err_info = Some(ProcError::ParentSiteFailed { site: failed });
                        });
                        affected += 1;
                    }
                }
            }
        }
        let _ = fsc; // message costs for notifications are local to survivors
        affected
    }

    /// §5.6 cleanup for a partition (rather than a crash): parent/child
    /// pairs split across partitions are notified in both directions, but
    /// processes stay alive in their own partitions. Returns the number of
    /// notifications delivered.
    pub fn handle_partition_split(&self, fsc: &FsCluster) -> usize {
        let mut notified = 0;
        let pids: Vec<Pid> = self.inner.borrow().procs.keys().copied().collect();
        for pid in pids {
            let Ok(snap) = self.get(pid) else { continue };
            if !snap.alive() {
                continue;
            }
            let Some(parent) = snap.parent else { continue };
            let Ok(ps) = self.get(parent) else { continue };
            if !ps.alive() || ps.site == snap.site {
                continue;
            }
            if fsc.net().reachable(ps.site, snap.site) {
                continue;
            }
            // "When the child's machine fails, the parent receives an
            // error signal" — and symmetrically for the child (§3.3).
            let _ = self.with(parent, |p| {
                p.pending.push(Signal::Sigchld);
                p.err_info = Some(ProcError::ChildSiteFailed {
                    child: pid,
                    site: snap.site,
                });
            });
            let _ = self.with(pid, |p| {
                p.pending.push(Signal::Sighup);
                p.err_info = Some(ProcError::ParentSiteFailed { site: ps.site });
            });
            notified += 2;
        }
        notified
    }
}

/// Runs `f` as one observed process-management operation: opens an
/// observability span for service `"proc"` around it and closes it with
/// the outcome. A no-op wrapper while observation is off.
fn proc_span<T>(
    fsc: &FsCluster,
    op: &str,
    site: SiteId,
    f: impl FnOnce() -> SysResult<T>,
) -> SysResult<T> {
    if !fsc.net().observing() {
        return f();
    }
    let span = fsc.net().obs_span_open("proc", op, site);
    let out = f();
    let outcome = match &out {
        Ok(_) => "ok".to_owned(),
        Err(e) => format!("{e:?}"),
    };
    fsc.net().obs_span_close(span, &outcome);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_fs::FsClusterBuilder;

    fn setup() -> (FsCluster, ProcMgr) {
        let fsc = FsClusterBuilder::new()
            .vax_sites(3)
            .filegroup("root", &[0, 1])
            .build();
        (fsc, ProcMgr::new())
    }

    #[test]
    fn init_fork_exit_wait() {
        let (fsc, pm) = setup();
        let init = pm.spawn_init(&fsc, SiteId(0), 0).unwrap();
        let child = pm.fork(&fsc, init, None).unwrap();
        assert_eq!(pm.site_of(child).unwrap(), SiteId(0));
        assert_eq!(pm.wait(init).unwrap(), None, "child still running");
        pm.exit(&fsc, child, 7).unwrap();
        let (reaped, st) = pm.wait(init).unwrap().unwrap();
        assert_eq!(reaped, child);
        assert_eq!(st, ExitStatus::Exited(7));
        assert_eq!(pm.wait(init).unwrap_err(), Errno::Echild);
    }

    #[test]
    fn remote_fork_copies_image_pages() {
        let (fsc, pm) = setup();
        let init = pm.spawn_init(&fsc, SiteId(0), 0).unwrap();
        fsc.net().reset_stats();
        let child = pm.fork(&fsc, init, Some(SiteId(2))).unwrap();
        assert_eq!(pm.site_of(child).unwrap(), SiteId(2));
        let st = fsc.net().stats();
        assert_eq!(st.sends("FORK req"), 1);
        assert_eq!(st.sends("PROC page"), 16, "parent image crossed the wire");
    }

    #[test]
    fn cross_site_signal_costs_one_message() {
        let (fsc, pm) = setup();
        let a = pm.spawn_init(&fsc, SiteId(0), 0).unwrap();
        let b = pm.spawn_init(&fsc, SiteId(1), 0).unwrap();
        fsc.net().reset_stats();
        pm.kill(&fsc, a, b, Signal::Sigusr1).unwrap();
        assert_eq!(fsc.net().stats().sends("SIGNAL"), 1);
        assert_eq!(pm.take_signals(b).unwrap(), vec![Signal::Sigusr1]);
        assert!(pm.take_signals(b).unwrap().is_empty(), "signals drain");
    }

    #[test]
    fn site_failure_notifies_both_directions() {
        let (fsc, pm) = setup();
        let parent = pm.spawn_init(&fsc, SiteId(0), 0).unwrap();
        let child = pm.fork(&fsc, parent, Some(SiteId(1))).unwrap();
        let grandchild = pm.fork(&fsc, child, Some(SiteId(2))).unwrap();
        fsc.net().crash(SiteId(1)); // kills `child`'s site
        pm.handle_site_failure(&fsc, SiteId(1));
        // Parent sees the child error.
        assert_eq!(
            pm.take_err_info(parent).unwrap(),
            Some(ProcError::ChildSiteFailed {
                child,
                site: SiteId(1)
            })
        );
        assert_eq!(pm.take_signals(parent).unwrap(), vec![Signal::Sigchld]);
        // Grandchild sees the parent error.
        assert_eq!(
            pm.take_err_info(grandchild).unwrap(),
            Some(ProcError::ParentSiteFailed { site: SiteId(1) })
        );
        // The process on the failed site is a zombie with SiteFailed.
        assert_eq!(
            pm.get(child).unwrap().state,
            ProcState::Zombie(ExitStatus::SiteFailed)
        );
    }

    #[test]
    fn kill_sigkill_terminates() {
        let (fsc, pm) = setup();
        let a = pm.spawn_init(&fsc, SiteId(0), 0).unwrap();
        let b = pm.fork(&fsc, a, None).unwrap();
        pm.kill(&fsc, a, b, Signal::Sigkill).unwrap();
        let (_, st) = pm.wait(a).unwrap().unwrap();
        assert_eq!(st, ExitStatus::Signaled(Signal::Sigkill));
    }
}
