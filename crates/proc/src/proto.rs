//! Typed wire protocol for process management (§3).
//!
//! Remote fork/exec/run, cross-machine signals and exit notifications
//! all ride the shared [`RpcEngine`](locus_net::RpcEngine); this module
//! is the *only* place the proc protocol's kind labels are spelled, so
//! statistics, traces and the chaos harness see one authoritative
//! message set.

use locus_net::WireMsg;
use locus_storage::PAGE_SIZE;

/// Wire size of a process-control message.
pub const CTRL_BYTES: usize = 96;

/// One process-management message (§3.1–3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcMsg {
    /// Allocate a process body at the destination for `fork` (§3.1); the
    /// address-space pages follow as [`ProcMsg::ProcPage`] messages.
    ForkReq,
    /// One page of the forked process's address space ("the relevant set
    /// of process pages are sent to the new process site", §3.1).
    ProcPage,
    /// Move the process for a remote `exec` (§3.1).
    ExecReq,
    /// Create the child directly at the execution site (`run` "avoids
    /// the copy of the parent process image", §3.1).
    RunReq,
    /// A signal crossing a machine boundary (§3.2).
    Signal,
    /// Child-exit notification to the parent's site (SIGCHLD, §3.2).
    ExitNotify,
}

impl WireMsg for ProcMsg {
    const SERVICE: &'static str = "proc";

    fn kind(&self) -> &'static str {
        match self {
            ProcMsg::ForkReq => "FORK req",
            ProcMsg::ProcPage => "PROC page",
            ProcMsg::ExecReq => "EXEC req",
            ProcMsg::RunReq => "RUN req",
            ProcMsg::Signal => "SIGNAL",
            ProcMsg::ExitNotify => "EXIT notify",
        }
    }

    fn reply_kind(&self) -> &'static str {
        match self {
            ProcMsg::ForkReq => "FORK resp",
            ProcMsg::ProcPage => "PROC page ack",
            ProcMsg::ExecReq => "EXEC resp",
            ProcMsg::RunReq => "RUN resp",
            ProcMsg::Signal => "SIGNAL ack",
            ProcMsg::ExitNotify => "EXIT notify ack",
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            ProcMsg::ProcPage => PAGE_SIZE,
            _ => CTRL_BYTES,
        }
    }

    /// Body allocation and process moves tolerate re-issue (the handler
    /// re-registers the same body); signals and exit notifications are
    /// exactly-once deliveries.
    fn idempotent(&self) -> bool {
        matches!(
            self,
            ProcMsg::ForkReq | ProcMsg::ProcPage | ProcMsg::ExecReq | ProcMsg::RunReq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_historical_wire_format() {
        assert_eq!(ProcMsg::ForkReq.kind(), "FORK req");
        assert_eq!(ProcMsg::ForkReq.reply_kind(), "FORK resp");
        assert_eq!(ProcMsg::ProcPage.wire_bytes(), PAGE_SIZE);
        assert_eq!(ProcMsg::Signal.wire_bytes(), CTRL_BYTES);
        assert!(ProcMsg::ForkReq.idempotent());
        assert!(!ProcMsg::ExitNotify.idempotent());
        assert_eq!(<ProcMsg as WireMsg>::SERVICE, "proc");
    }
}
