//! Process structures.

use std::collections::BTreeMap;

use locus_fs::proto::Fd;
use locus_fs::ProcFsCtx;
use locus_types::{Pid, SiteId};

/// Unix-style signals, plus nothing exotic: the paper folds distribution
/// errors into the existing signal interface (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Signal {
    /// Interrupt.
    Sigint,
    /// Kill (uncatchable).
    Sigkill,
    /// Broken pipe.
    Sigpipe,
    /// Child stopped or terminated.
    Sigchld,
    /// Hangup.
    Sighup,
    /// User-defined.
    Sigusr1,
}

/// Why a process died.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitStatus {
    /// Normal exit with a code.
    Exited(i32),
    /// Terminated by a signal.
    Signaled(Signal),
    /// The process's site crashed or left the partition (§3.3, §5.6).
    SiteFailed,
}

/// Distribution-error detail "deposited in the parent's process
/// structure, which can be interrogated via a new system call" (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcError {
    /// A child's site failed.
    ChildSiteFailed {
        /// The child that was lost.
        child: Pid,
        /// The site that failed.
        site: SiteId,
    },
    /// The parent's site failed (delivered to the child).
    ParentSiteFailed {
        /// The site that failed.
        site: SiteId,
    },
    /// A remote fork/exec could not complete because the remote site
    /// failed mid-operation (§5.6: "return error to caller").
    RemoteSpawnFailed {
        /// The site that failed.
        site: SiteId,
    },
}

/// Process lifecycle states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Runnable/running.
    Running,
    /// Exited, awaiting `wait` by the parent.
    Zombie(ExitStatus),
}

/// One process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Network-wide process id.
    pub pid: Pid,
    /// Parent, if any.
    pub parent: Option<Pid>,
    /// Site the process executes on.
    pub site: SiteId,
    /// Filesystem context: cwd, hidden-directory contexts, replication
    /// factor, uid — the "per process state information" of §2.3.7/§2.4.1.
    pub ctx: ProcFsCtx,
    /// Open descriptors: process-level number → site-local kernel fd.
    pub fds: BTreeMap<u32, Fd>,
    /// Execution-site advice list, "currently a structured advice list,
    /// \[which\] can be set dynamically" (§3.1).
    pub advice: Vec<SiteId>,
    /// Lifecycle state.
    pub state: ProcState,
    /// Pending (not yet taken) signals.
    pub pending: Vec<Signal>,
    /// Distribution-error detail for the new interrogation system call.
    pub err_info: Option<ProcError>,
    /// Pathname of the executing load module, if `exec`ed.
    pub load_module: Option<String>,
    /// Address-space size in pages (drives fork copy cost, §3.1).
    pub image_pages: usize,
    /// Live children.
    pub children: Vec<Pid>,
}

impl Process {
    /// Next process-level descriptor number.
    pub fn next_fd_no(&self) -> u32 {
        self.fds.keys().max().map(|m| m + 1).unwrap_or(3)
    }

    /// Whether the process is alive.
    pub fn alive(&self) -> bool {
        matches!(self.state, ProcState::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_types::{FilegroupId, Gfid, Ino, MachineType};

    #[test]
    fn fd_numbering_starts_at_three() {
        let p = Process {
            pid: Pid(1),
            parent: None,
            site: SiteId(0),
            ctx: ProcFsCtx::new(Gfid::new(FilegroupId(0), Ino(1)), MachineType::Vax),
            fds: BTreeMap::new(),
            advice: Vec::new(),
            state: ProcState::Running,
            pending: Vec::new(),
            err_info: None,
            load_module: None,
            image_pages: 8,
            children: Vec::new(),
        };
        assert_eq!(p.next_fd_no(), 3);
        assert!(p.alive());
    }
}
