//! Transparent remote processes (§3 of the paper).
//!
//! "LOCUS permits one to execute programs at any site in the network,
//! subject to permission control, in a manner just as easy as executing
//! the program locally … The mechanism is entirely transparent, so that
//! existing software can be executed either locally or remotely, with no
//! change to that software" (§3.1).
//!
//! This crate implements:
//!
//! * network-wide process identifiers and a process table;
//! * `fork` (local and remote, with address-space page copy), `exec`
//!   (with execution-site selection driven by the per-process *advice
//!   list* and machine-type load-module lookup through hidden
//!   directories), and the `run` optimization ("run avoids the copy of
//!   the parent process image which occurs with fork", §3.1);
//! * descriptor inheritance across sites through the shared-offset token
//!   scheme of `locus-fs`;
//! * cross-machine signals and exit/wait with Unix semantics (§3.2);
//! * the error-handling rules of §3.3: when a child's site fails the
//!   parent receives an error signal plus detail "deposited in the
//!   parent's process structure, which can be interrogated via a new
//!   system call", and vice versa.
//!
//! Process state is held in one [`ProcMgr`]; message costs for remote
//! operations are charged to the shared simulated network so experiment
//! harnesses see fork/exec/signal traffic alongside filesystem traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mgr;
pub mod process;
pub mod proto;

pub use mgr::ProcMgr;
pub use proto::ProcMsg;
pub use process::{ExitStatus, ProcError, ProcState, Process, Signal};
