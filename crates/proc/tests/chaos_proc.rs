//! Chaos harness for the process protocol: seeded fault schedules drive
//! remote fork/exec traffic through the shared RPC engine, asserting the
//! §3 transparency claims survive message loss.
//!
//! Each case builds a 4-site cluster, installs a seed-derived
//! [`FaultPlan`] (drops/duplicates/delays up to 30 % loss, sometimes a
//! site crash window) and forks/exits a stream of children at
//! rng-chosen sites. The invariants:
//!
//! * **A fork either fully succeeds or cleanly fails.** Success means
//!   the child exists at the destination site; failure surfaces as
//!   `Esitedown` (or `Esrch` when the parent's site died mid-schedule)
//!   and leaves no orphan process entry.
//! * **Every successful fork is reapable.** After exiting all children,
//!   the parent reaps exactly the successes — message loss never
//!   creates or destroys a process silently.
//! * **The proc protocol is deterministic in the seed**: a replayed
//!   schedule produces a byte-identical network trace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use locus_fs::{FsCluster, FsClusterBuilder};
use locus_net::{FaultPlan, FaultSpec, RetryPolicy, SimRng, TraceEvent};
use locus_proc::ProcMgr;
use locus_types::{Errno, SiteId, Ticks};
use proptest::prelude::*;
use proptest::{runtime, TestRng};

/// Total sites; the root filegroup lives at sites 0 and 1.
const N_SITES: u32 = 4;
/// The parent process's home site.
const HOME: SiteId = SiteId(0);
/// Fork attempts per schedule.
const STEPS: u32 = 10;

fn cluster() -> (FsCluster, ProcMgr) {
    let fsc = FsClusterBuilder::new()
        .vax_sites(N_SITES as usize)
        .filegroup("root", &[0, 1])
        // Exec path resolution under chaos runs through the name cache.
        .name_cache(true)
        .build();
    // A generous budget: the chaos plans push 30 % loss, and the proc
    // protocol's availability claim is about riding out loss, not about
    // a specific attempt count.
    fsc.set_retry_policy(RetryPolicy {
        max_attempts: 12,
        base_backoff: Ticks::millis(1),
        ..RetryPolicy::default()
    });
    (fsc, ProcMgr::new())
}

/// A seed-derived fault plan: the same shape as the filesystem chaos
/// harness (≤ 0.3 drop rate, duplicates, delays, a 50 % chance of a
/// non-home site crash window) so the proc protocol faces the exact
/// fault model the fs protocol is tested under.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00F0_27C5);
    let spec = FaultSpec {
        drop: 0.05 + rng.gen_f64() * 0.25,
        duplicate: rng.gen_f64() * 0.10,
        delay_prob: rng.gen_f64() * 0.20,
        delay: Ticks::micros(rng.gen_range(20u64..200)),
        circuit_abort: 0.0,
    };
    let mut plan = FaultPlan::new(seed).default_spec(spec);
    if rng.gen_bool(0.5) {
        let victim = rng.gen_range(1u32..N_SITES);
        let at = Ticks::millis(rng.gen_range(2u64..30));
        let until = Ticks::micros(at.as_micros() + rng.gen_range(2_000u64..12_000));
        plan = plan.crash_window(SiteId(victim), at, until);
    }
    plan
}

/// One schedule: STEPS remote forks at rng-chosen sites under the fault
/// plan, each successful child exited and reaped.
fn run_schedule(seed: u64) -> Result<(), String> {
    let (fsc, pm) = cluster();
    fsc.net().set_observing(true);
    fsc.net().install_faults(plan_for(seed));
    let mut rng = SimRng::seed_from_u64(seed ^ 0x00D1_5EA5);
    let parent = pm
        .spawn_init(&fsc, HOME, 1)
        .map_err(|e| format!("spawn_init: {e:?}"))?;

    let mut live = Vec::new();
    for step in 0..STEPS {
        let dest = SiteId(rng.gen_range(0u32..N_SITES));
        match pm.fork(&fsc, parent, Some(dest)) {
            Ok(child) => {
                let at = pm
                    .site_of(child)
                    .map_err(|e| format!("step {step}: forked child vanished: {e:?}"))?;
                if at != dest {
                    return Err(format!("step {step}: child at {at:?}, wanted {dest:?}"));
                }
                live.push(child);
            }
            Err(Errno::Esitedown) => {} // dest crashed or loss exhausted retries
            Err(e) => return Err(format!("step {step}: fork to {dest:?} failed with {e:?}")),
        }
    }

    // Every success is reapable: exit each child, then the parent reaps
    // exactly the successes.
    let expected = live.len();
    for &child in &live {
        pm.exit(&fsc, child, 0)
            .map_err(|e| format!("exit {child:?}: {e:?}"))?;
    }
    let mut reaped = 0;
    loop {
        match pm.wait(parent) {
            Ok(Some(_)) => reaped += 1,
            // No zombies left — or no children at all (every fork failed).
            Ok(None) | Err(Errno::Echild) => break,
            Err(e) => return Err(format!("wait: {e:?}")),
        }
    }
    if reaped != expected {
        return Err(format!("reaped {reaped} children, expected {expected}"));
    }

    // The schedule's span trace must be complete and audit clean.
    if fsc.net().obs_truncated() > 0 {
        return Err(format!(
            "seed {seed}: {} observability events dropped past the cap",
            fsc.net().obs_truncated()
        ));
    }
    let audit = locus_net::audit(&fsc.net().take_obs_events());
    if !audit.is_clean() {
        return Err(format!(
            "seed {seed}: trace audit found violations: {:?}",
            audit.violations
        ));
    }
    Ok(())
}

/// Runs `schedule` over every seed across `std::thread` workers. Each
/// schedule owns its whole cluster and virtual clock, so determinism is
/// strictly per-seed; failures are reported in seed order.
fn run_schedules_parallel(seeds: &[u64], schedule: impl Fn(u64) -> Result<(), String> + Sync) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<(), String>>>> =
        seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let r = schedule(seeds[i]);
                *results[i].lock().expect("no poisoned schedule slot") = Some(r);
            });
        }
    });
    for (i, slot) in results.iter().enumerate() {
        let r = slot
            .lock()
            .expect("no poisoned schedule slot")
            .take()
            .expect("every slot ran");
        if let Err(msg) = r {
            panic!("schedule case {i} of {} failed:\n{msg}", seeds.len());
        }
    }
}

/// Proptest-style seed derivation, identical to the filesystem chaos
/// harness (same name hash, same per-case rng) — including
/// `PROPTEST_SEED` / `PROPTEST_CASES` overrides.
fn proptest_seed_set(test_name: &str, cases: u32) -> Vec<u64> {
    let config = ProptestConfig::with_cases(cases);
    let cases = runtime::case_count(&config);
    let base = runtime::base_seed(test_name);
    (0..cases as u64)
        .map(|case| {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Strategy::generate(&any::<u64>(), &mut rng)
        })
        .collect()
}

#[test]
fn chaos_schedules_preserve_fork_invariants() {
    let seeds = proptest_seed_set(
        concat!(module_path!(), "::chaos_schedules_preserve_fork_invariants"),
        128,
    );
    run_schedules_parallel(&seeds, run_schedule);
}

/// The acceptance-criterion demonstration: a remote FORK survives an
/// injected drop of its own request message through the shared retry
/// path — the drop is observable in the retry counters, and the fork
/// still succeeds.
#[test]
fn remote_fork_survives_an_injected_request_drop() {
    let (fsc, pm) = cluster();
    fsc.net().install_faults(
        FaultPlan::new(21).kind_spec("FORK req", FaultSpec::drop_rate(0.6)),
    );
    let parent = pm.spawn_init(&fsc, HOME, 1).expect("spawn_init");
    let child = pm
        .fork(&fsc, parent, Some(SiteId(2)))
        .expect("fork rides out the dropped request");
    assert_eq!(pm.site_of(child).unwrap(), SiteId(2));
    let st = fsc.net().stats();
    assert!(
        st.drops("FORK req") > 0,
        "the schedule must actually drop a FORK req"
    );
    assert!(
        st.retries("FORK req") > 0,
        "the shared retry path must have resent it"
    );
    assert_eq!(st.sends("FORK req"), 1, "exactly one request got through");
    assert_eq!(st.sends("PROC page"), 16, "the image still crossed intact");
    assert!(st.service("proc").retries > 0, "retries tagged to the service");
}

/// A remote EXIT notify abandoned after retry exhaustion is no longer
/// silent: the engine counts it as a one-way loss against the proc
/// service.
#[test]
fn lost_exit_notify_is_counted_not_silent() {
    let (fsc, pm) = cluster();
    let parent = pm.spawn_init(&fsc, HOME, 1).expect("spawn_init");
    let child = pm.fork(&fsc, parent, Some(SiteId(1))).expect("fork");
    fsc.net().install_faults(
        FaultPlan::new(3).kind_spec("EXIT notify", FaultSpec::drop_rate(1.0)),
    );
    pm.exit(&fsc, child, 0).expect("exit");
    let st = fsc.net().stats();
    assert_eq!(st.sends("EXIT notify"), 0, "every attempt was dropped");
    assert_eq!(st.one_way_losses("EXIT notify"), 1);
    assert_eq!(st.service("proc").losses, 1);
    // The parent still learns of the death locally (shared process
    // table); a real partition would leave this to §5.6 cleanup.
    assert!(pm.wait(parent).expect("wait").is_some());
}

/// Replaying one schedule must produce a byte-identical network trace:
/// the proc protocol inherits the engine's determinism.
#[test]
fn proc_protocol_trace_is_deterministic() {
    type Observation = (
        Vec<TraceEvent>,
        std::collections::BTreeMap<(String, String), locus_net::Histogram>,
    );
    let run = |seed: u64| -> Observation {
        let (fsc, pm) = cluster();
        fsc.net().set_tracing(true);
        fsc.net().set_observing(true);
        fsc.net().install_faults(plan_for(seed));
        let _ = run_schedule_traced(seed, &fsc, &pm);
        assert_eq!(fsc.net().trace_truncated(), 0, "trace must be complete");
        (fsc.net().take_trace(), fsc.net().obs_histograms())
    };
    let (ta, ha) = run(0xFEED);
    let (tb, hb) = run(0xFEED);
    assert_eq!(ta, tb, "protocol traces diverged between identical runs");
    assert_eq!(ha, hb, "latency histograms diverged between identical runs");
    assert!(ha.keys().any(|(svc, _)| svc == "proc"), "proc ops observed");
}

/// The schedule body reused by the determinism check (faults already
/// installed by the caller so tracing can be enabled first).
fn run_schedule_traced(seed: u64, fsc: &FsCluster, pm: &ProcMgr) -> Result<(), String> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x00D1_5EA5);
    let parent = pm
        .spawn_init(fsc, HOME, 1)
        .map_err(|e| format!("spawn_init: {e:?}"))?;
    for _ in 0..STEPS {
        let dest = SiteId(rng.gen_range(0u32..N_SITES));
        if let Ok(child) = pm.fork(fsc, parent, Some(dest)) {
            let _ = pm.exit(fsc, child, 0);
        }
    }
    Ok(())
}
