//! Process-layer semantics: environment inheritance, execution-site
//! selection, signal and wait edge cases (§3).

use locus_fs::ops::namei;
use locus_fs::{FsCluster, FsClusterBuilder, ProcFsCtx};
use locus_proc::{ExitStatus, ProcMgr, Signal};
use locus_types::{Errno, FileType, MachineType, OpenMode, Perms, SiteId};

fn s(i: u32) -> SiteId {
    SiteId(i)
}

fn setup() -> (FsCluster, ProcMgr) {
    let fsc = FsClusterBuilder::new()
        .site(MachineType::Vax)
        .site(MachineType::Vax)
        .site(MachineType::Pdp11)
        .filegroup("root", &[0, 1])
        .build();
    (fsc, ProcMgr::new())
}

fn install(fsc: &FsCluster, path: &str, body: &[u8]) {
    let ctx = ProcFsCtx::new(fsc.kernel(s(0)).mount.root().unwrap(), MachineType::Vax);
    let gfid = namei::create(fsc, s(0), &ctx, path, FileType::Untyped, Perms::DIR_DEFAULT).unwrap();
    namei::write_file_internal(fsc, s(0), gfid, body).unwrap();
    fsc.settle();
}

#[test]
fn child_inherits_context_and_replication_factor() {
    let (fsc, pm) = setup();
    let parent = pm.spawn_init(&fsc, s(0), 9).unwrap();
    pm.set_ncopies(parent, 1).unwrap();
    let child = pm.fork(&fsc, parent, Some(s(1))).unwrap();
    let c = pm.get(child).unwrap();
    assert_eq!(c.ctx.uid, 9, "uid inherited");
    assert_eq!(c.ctx.ncopies, 1, "§2.3.7 inherited variable");
    // The child's hidden-directory context follows its *execution* site's
    // machine type.
    assert_eq!(c.ctx.contexts, vec!["vax".to_owned()]);
    let grandchild = pm.fork(&fsc, child, Some(s(2))).unwrap();
    assert_eq!(
        pm.get(grandchild).unwrap().ctx.contexts,
        vec!["45".to_owned()]
    );
}

#[test]
fn exec_with_no_advice_stays_local() {
    let (fsc, pm) = setup();
    install(&fsc, "/prog", &vec![1u8; 2048]);
    let p = pm.spawn_init(&fsc, s(1), 0).unwrap();
    pm.exec(&fsc, p, "/prog").unwrap();
    assert_eq!(
        pm.site_of(p).unwrap(),
        s(1),
        "local execution is the default (§6)"
    );
}

#[test]
fn exec_missing_program_is_enoent_and_process_survives() {
    let (fsc, pm) = setup();
    let p = pm.spawn_init(&fsc, s(0), 0).unwrap();
    assert_eq!(
        pm.exec(&fsc, p, "/no-such-program").unwrap_err(),
        Errno::Enoent
    );
    assert!(
        pm.get(p).unwrap().alive(),
        "failed exec leaves the process intact"
    );
}

#[test]
fn advice_skips_unreachable_sites() {
    let (fsc, pm) = setup();
    install(&fsc, "/tool", b"module");
    let p = pm.spawn_init(&fsc, s(0), 0).unwrap();
    fsc.net().crash(s(1));
    pm.set_advice(p, vec![s(1), s(0)]).unwrap();
    pm.exec(&fsc, p, "/tool").unwrap();
    assert_eq!(pm.site_of(p).unwrap(), s(0), "dead advice entry skipped");
}

#[test]
fn run_does_not_copy_the_parent_image() {
    let (fsc, pm) = setup();
    install(&fsc, "/job", &vec![7u8; 4096]);
    let parent = pm.spawn_init(&fsc, s(0), 0).unwrap();
    fsc.net().reset_stats();
    let job = pm.run(&fsc, parent, "/job", vec![s(1)]).unwrap();
    let st = fsc.net().stats();
    assert_eq!(
        st.sends("PROC page"),
        0,
        "run avoids the fork image copy (§3.1)"
    );
    assert!(st.sends("RUN req") == 1);
    assert_eq!(pm.site_of(job).unwrap(), s(1));
    assert_eq!(pm.get(job).unwrap().image_pages, 4);
}

#[test]
fn signals_queue_in_order_and_drain() {
    let (fsc, pm) = setup();
    let a = pm.spawn_init(&fsc, s(0), 0).unwrap();
    let b = pm.spawn_init(&fsc, s(1), 0).unwrap();
    pm.kill(&fsc, a, b, Signal::Sigusr1).unwrap();
    pm.kill(&fsc, a, b, Signal::Sigint).unwrap();
    assert_eq!(
        pm.take_signals(b).unwrap(),
        vec![Signal::Sigusr1, Signal::Sigint]
    );
    // Signalling a dead process is ESRCH.
    pm.exit(&fsc, b, 0).unwrap();
    assert_eq!(
        pm.kill(&fsc, a, b, Signal::Sigint).unwrap_err(),
        Errno::Esrch
    );
}

#[test]
fn signal_to_unreachable_site_fails_with_esitedown() {
    let (fsc, pm) = setup();
    let a = pm.spawn_init(&fsc, s(0), 0).unwrap();
    let b = pm.spawn_init(&fsc, s(2), 0).unwrap();
    fsc.net().partition(&[vec![s(0), s(1)], vec![s(2)]]);
    assert_eq!(
        pm.kill(&fsc, a, b, Signal::Sigusr1).unwrap_err(),
        Errno::Esitedown
    );
}

#[test]
fn exit_closes_and_commits_descriptors() {
    let (fsc, pm) = setup();
    let p = pm.spawn_init(&fsc, s(0), 0).unwrap();
    let fd = pm.pcreat(&fsc, p, "/exit-test").unwrap();
    pm.pwrite(&fsc, p, fd, b"flushed at exit").unwrap();
    pm.exit(&fsc, p, 0).unwrap();
    fsc.settle();
    // The file was committed by the exit-time close (§2.3.6).
    let ctx = ProcFsCtx::new(fsc.kernel(s(1)).mount.root().unwrap(), MachineType::Vax);
    let g = namei::resolve(&fsc, s(1), &ctx, "/exit-test").unwrap();
    assert_eq!(
        namei::read_file_internal(&fsc, s(1), g).unwrap(),
        b"flushed at exit"
    );
    assert_eq!(
        fsc.kernel(s(0)).open_fd_count(),
        0,
        "kernel descriptors released"
    );
}

#[test]
fn wait_reaps_in_any_order_and_reports_status() {
    let (fsc, pm) = setup();
    let p = pm.spawn_init(&fsc, s(0), 0).unwrap();
    let c1 = pm.fork(&fsc, p, None).unwrap();
    let c2 = pm.fork(&fsc, p, Some(s(1))).unwrap();
    pm.exit(&fsc, c2, 42).unwrap();
    let (who, st) = pm.wait(p).unwrap().unwrap();
    assert_eq!(who, c2);
    assert_eq!(st, ExitStatus::Exited(42));
    pm.exit(&fsc, c1, 0).unwrap();
    let (who, _) = pm.wait(p).unwrap().unwrap();
    assert_eq!(who, c1);
    assert_eq!(pm.wait(p).unwrap_err(), Errno::Echild);
}

#[test]
fn process_reads_through_inherited_descriptor_remotely() {
    let (fsc, pm) = setup();
    let parent = pm.spawn_init(&fsc, s(0), 0).unwrap();
    install(&fsc, "/shared-data", b"abcdefghijklmnop");
    let fd = pm
        .popen(&fsc, parent, "/shared-data", OpenMode::Read)
        .unwrap();
    assert_eq!(pm.pread(&fsc, parent, fd, 4).unwrap(), b"abcd");
    let child = pm.fork(&fsc, parent, Some(s(2))).unwrap();
    // Same process-level descriptor number, same offset stream (§3.1).
    assert_eq!(pm.pread(&fsc, child, fd, 4).unwrap(), b"efgh");
    assert_eq!(pm.pread(&fsc, parent, fd, 4).unwrap(), b"ijkl");
    pm.pclose(&fsc, child, fd).unwrap();
    pm.pclose(&fsc, parent, fd).unwrap();
}

#[test]
fn spawn_on_crashed_site_fails() {
    let (fsc, pm) = setup();
    fsc.net().crash(s(2));
    assert_eq!(pm.spawn_init(&fsc, s(2), 0).unwrap_err(), Errno::Esitedown);
}
