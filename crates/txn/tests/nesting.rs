//! Deep-nesting and isolation tests for the transaction system
//! ([MEUL 83]).

use locus_fs::ops::namei;
use locus_fs::{FsCluster, FsClusterBuilder, ProcFsCtx};
use locus_txn::{TxnMgr, TxnState};
use locus_types::{Errno, FileType, Gfid, MachineType, Perms, SiteId};

fn s(i: u32) -> SiteId {
    SiteId(i)
}

fn setup_files(names: &[&str]) -> (FsCluster, TxnMgr, Vec<Gfid>) {
    let fsc = FsClusterBuilder::new()
        .vax_sites(4)
        .filegroup("root", &[0, 1])
        .build();
    let ctx = ProcFsCtx::new(fsc.kernel(s(0)).mount.root().unwrap(), MachineType::Vax);
    let mut gfids = Vec::new();
    for n in names {
        let g = namei::create(
            &fsc,
            s(0),
            &ctx,
            &format!("/{n}"),
            FileType::Database,
            Perms::FILE_DEFAULT,
        )
        .unwrap();
        namei::write_file_internal(&fsc, s(0), g, b"initial").unwrap();
        gfids.push(g);
    }
    fsc.settle();
    (fsc, TxnMgr::new(), gfids)
}

#[test]
fn three_levels_of_nesting_commit_bottom_up() {
    let (fsc, tm, g) = setup_files(&["db"]);
    let top = tm.begin(s(0));
    let mid = tm.begin_sub(&fsc, top, s(1)).unwrap();
    let leaf = tm.begin_sub(&fsc, mid, s(2)).unwrap();
    tm.write(&fsc, leaf, g[0], b"leaf value").unwrap();
    // Reads anywhere on the chain see the deepest staged write.
    assert_eq!(tm.read(&fsc, leaf, g[0]).unwrap(), b"leaf value");
    tm.commit(&fsc, leaf).unwrap();
    assert_eq!(tm.read(&fsc, mid, g[0]).unwrap(), b"leaf value");
    tm.commit(&fsc, mid).unwrap();
    assert_eq!(tm.read(&fsc, top, g[0]).unwrap(), b"leaf value");
    assert_eq!(
        namei::read_file_internal(&fsc, s(3), g[0]).unwrap(),
        b"initial",
        "nothing durable before top commit"
    );
    tm.commit(&fsc, top).unwrap();
    fsc.settle();
    assert_eq!(
        namei::read_file_internal(&fsc, s(3), g[0]).unwrap(),
        b"leaf value"
    );
}

#[test]
fn mid_level_abort_discards_the_whole_subtree() {
    let (fsc, tm, g) = setup_files(&["db"]);
    let top = tm.begin(s(0));
    tm.write(&fsc, top, g[0], b"top work").unwrap();
    let mid = tm.begin_sub(&fsc, top, s(1)).unwrap();
    let leaf = tm.begin_sub(&fsc, mid, s(2)).unwrap();
    tm.write(&fsc, leaf, g[0], b"leaf work").unwrap();
    tm.commit(&fsc, leaf).unwrap(); // leaf passes to mid...
    tm.abort(&fsc, mid).unwrap(); // ...but mid aborts: all of it gone
    assert_eq!(tm.state(leaf).unwrap(), TxnState::Committed);
    assert_eq!(tm.read(&fsc, top, g[0]).unwrap(), b"top work");
    tm.commit(&fsc, top).unwrap();
    assert_eq!(
        namei::read_file_internal(&fsc, s(0), g[0]).unwrap(),
        b"top work"
    );
}

#[test]
fn commit_of_parent_commits_open_children_first() {
    let (fsc, tm, g) = setup_files(&["db"]);
    let top = tm.begin(s(0));
    let sub = tm.begin_sub(&fsc, top, s(1)).unwrap();
    tm.write(&fsc, sub, g[0], b"child work").unwrap();
    // Committing the top with the child still active commits bottom-up.
    tm.commit(&fsc, top).unwrap();
    assert_eq!(tm.state(sub).unwrap(), TxnState::Committed);
    assert_eq!(
        namei::read_file_internal(&fsc, s(0), g[0]).unwrap(),
        b"child work"
    );
}

#[test]
fn siblings_are_isolated_until_commit() {
    let (fsc, tm, g) = setup_files(&["a", "b"]);
    let top = tm.begin(s(0));
    let s1 = tm.begin_sub(&fsc, top, s(1)).unwrap();
    let s2 = tm.begin_sub(&fsc, top, s(2)).unwrap();
    tm.write(&fsc, s1, g[0], b"one").unwrap();
    // Sibling s2 does NOT see s1's uncommitted staging (it is not an
    // ancestor), only the disk state.
    assert_eq!(tm.read(&fsc, s2, g[0]).unwrap(), b"initial");
    tm.commit(&fsc, s1).unwrap();
    // After s1 commits to the parent, the staging is on s2's ancestor
    // chain and becomes visible.
    assert_eq!(tm.read(&fsc, s2, g[0]).unwrap(), b"one");
    tm.commit(&fsc, s2).unwrap();
    tm.commit(&fsc, top).unwrap();
}

#[test]
fn independent_top_levels_conflict_on_the_same_file() {
    let (fsc, tm, g) = setup_files(&["db"]);
    let t1 = tm.begin(s(0));
    let t2 = tm.begin(s(1));
    tm.write(&fsc, t1, g[0], b"t1").unwrap();
    assert_eq!(tm.write(&fsc, t2, g[0], b"t2").unwrap_err(), Errno::Etxtbsy);
    tm.abort(&fsc, t1).unwrap();
    tm.write(&fsc, t2, g[0], b"t2").unwrap();
    tm.commit(&fsc, t2).unwrap();
    assert_eq!(namei::read_file_internal(&fsc, s(0), g[0]).unwrap(), b"t2");
}

#[test]
fn multi_file_transaction_installs_all_files() {
    let (fsc, tm, g) = setup_files(&["x", "y", "z"]);
    let top = tm.begin(s(0));
    for (i, gf) in g.iter().enumerate() {
        tm.write(&fsc, top, *gf, format!("value {i}").as_bytes())
            .unwrap();
    }
    tm.commit(&fsc, top).unwrap();
    fsc.settle();
    for (i, gf) in g.iter().enumerate() {
        assert_eq!(
            namei::read_file_internal(&fsc, s(1), *gf).unwrap(),
            format!("value {i}").as_bytes()
        );
    }
    assert_eq!(tm.locked_files(), 0, "top commit released every lock");
}

#[test]
fn remote_subtransaction_costs_messages() {
    let (fsc, tm, _) = setup_files(&["db"]);
    let top = tm.begin(s(0));
    fsc.net().reset_stats();
    let sub = tm.begin_sub(&fsc, top, s(2)).unwrap();
    assert_eq!(fsc.net().stats().sends("TXN begin"), 1);
    tm.commit(&fsc, sub).unwrap();
    assert_eq!(fsc.net().stats().sends("TXN commit"), 1);
    tm.commit(&fsc, top).unwrap();
    // A local subtransaction is free.
    let top2 = tm.begin(s(0));
    fsc.net().reset_stats();
    let sub2 = tm.begin_sub(&fsc, top2, s(0)).unwrap();
    tm.commit(&fsc, sub2).unwrap();
    assert_eq!(fsc.net().stats().total_sends(), 0);
    tm.commit(&fsc, top2).unwrap();
}

#[test]
fn orphan_abort_spares_subtrees_that_stay_connected() {
    let (fsc, tm, g) = setup_files(&["db"]);
    let top = tm.begin(s(0));
    let near = tm.begin_sub(&fsc, top, s(1)).unwrap();
    let far = tm.begin_sub(&fsc, top, s(3)).unwrap();
    tm.write(&fsc, near, g[0], b"near").unwrap();
    fsc.net().partition(&[vec![s(0), s(1)], vec![s(2), s(3)]]);
    let aborted = tm.abort_orphans(&fsc);
    assert_eq!(aborted, 1, "only the cut-off subtransaction dies");
    assert_eq!(tm.state(far).unwrap(), TxnState::Aborted);
    assert_eq!(tm.state(near).unwrap(), TxnState::Active);
    tm.commit(&fsc, near).unwrap();
    tm.commit(&fsc, top).unwrap();
    assert_eq!(
        namei::read_file_internal(&fsc, s(0), g[0]).unwrap(),
        b"near"
    );
}
