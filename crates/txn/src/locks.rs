//! The transaction lock table with ancestor inheritance.

use std::collections::{BTreeMap, BTreeSet};

use locus_types::Gfid;

/// Transaction identifier (defined here to avoid a cycle; re-exported as
/// [`crate::TxnId`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

impl core::fmt::Display for TxnId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Write-lock table: file → holders. The nested-transaction rule: a
/// transaction may take a lock if every current holder is one of its
/// ancestors; committing a subtransaction passes its locks to the parent.
#[derive(Debug, Default)]
pub struct LockTable {
    held: BTreeMap<Gfid, BTreeSet<TxnId>>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire a write lock for `tid`, whose ancestor chain
    /// (inclusive) is `ancestors`. Returns false on conflict.
    pub fn acquire(&mut self, gfid: Gfid, tid: TxnId, ancestors: &BTreeSet<TxnId>) -> bool {
        let holders = self.held.entry(gfid).or_default();
        if holders.iter().all(|h| ancestors.contains(h)) {
            holders.insert(tid);
            true
        } else {
            false
        }
    }

    /// Whether `tid` currently holds a lock on `gfid`.
    pub fn holds(&self, gfid: Gfid, tid: TxnId) -> bool {
        self.held
            .get(&gfid)
            .map(|h| h.contains(&tid))
            .unwrap_or(false)
    }

    /// Passes all of `child`'s locks to `parent` (subtransaction commit).
    pub fn pass_to_parent(&mut self, child: TxnId, parent: TxnId) {
        for holders in self.held.values_mut() {
            if holders.remove(&child) {
                holders.insert(parent);
            }
        }
        self.prune();
    }

    /// Releases every lock held by `tid` (abort, or top-level commit).
    pub fn release_all(&mut self, tid: TxnId) {
        for holders in self.held.values_mut() {
            holders.remove(&tid);
        }
        self.prune();
    }

    /// Number of files currently locked.
    pub fn locked_files(&self) -> usize {
        self.held.len()
    }

    fn prune(&mut self) {
        self.held.retain(|_, h| !h.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_types::{FilegroupId, Ino};

    fn g(i: u32) -> Gfid {
        Gfid::new(FilegroupId(0), Ino(i))
    }

    fn anc(ids: &[u64]) -> BTreeSet<TxnId> {
        ids.iter().map(|&i| TxnId(i)).collect()
    }

    #[test]
    fn independent_transactions_conflict() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(g(1), TxnId(1), &anc(&[1])));
        assert!(!lt.acquire(g(1), TxnId(2), &anc(&[2])));
        assert!(
            lt.acquire(g(2), TxnId(2), &anc(&[2])),
            "different file is fine"
        );
    }

    #[test]
    fn child_may_take_ancestor_lock() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(g(1), TxnId(1), &anc(&[1])));
        // Child 3 of parent 1: ancestors = {3, 1}.
        assert!(lt.acquire(g(1), TxnId(3), &anc(&[3, 1])));
        // Unrelated txn 2 still conflicts.
        assert!(!lt.acquire(g(1), TxnId(2), &anc(&[2])));
    }

    #[test]
    fn commit_passes_locks_up_and_release_frees() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(g(1), TxnId(3), &anc(&[3, 1])));
        lt.pass_to_parent(TxnId(3), TxnId(1));
        assert!(lt.holds(g(1), TxnId(1)));
        assert!(!lt.holds(g(1), TxnId(3)));
        lt.release_all(TxnId(1));
        assert_eq!(lt.locked_files(), 0);
        assert!(lt.acquire(g(1), TxnId(2), &anc(&[2])));
    }
}
