//! The nested-transaction manager.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use locus_fs::ops::namei;
use locus_fs::FsCluster;
use locus_types::{Errno, Gfid, SiteId, SysResult};

use crate::locks::LockTable;
pub use crate::locks::TxnId;

/// Transaction lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnState {
    /// In progress.
    Active,
    /// Committed (for a subtransaction: relative to its parent).
    Committed,
    /// Aborted; all effects discarded.
    Aborted,
}

#[derive(Clone, Debug)]
struct Txn {
    parent: Option<TxnId>,
    children: Vec<TxnId>,
    site: SiteId,
    state: TxnState,
    /// Staged whole-file images, visible to this transaction and its
    /// descendants until top-level commit.
    writes: BTreeMap<Gfid, Vec<u8>>,
}

/// The transaction manager: transaction tree, lock table, staging and the
/// partition-abort rule of §5.6.
pub struct TxnMgr {
    inner: RefCell<Inner>,
}

struct Inner {
    txns: BTreeMap<TxnId, Txn>,
    locks: LockTable,
    next: u64,
}

impl Default for TxnMgr {
    fn default() -> Self {
        TxnMgr::new()
    }
}

/// Wire size of a transaction-control message.
const CTRL_BYTES: usize = 80;

impl TxnMgr {
    /// An empty manager.
    pub fn new() -> Self {
        TxnMgr {
            inner: RefCell::new(Inner {
                txns: BTreeMap::new(),
                locks: LockTable::new(),
                next: 1,
            }),
        }
    }

    /// Begins a top-level transaction at `site`.
    pub fn begin(&self, site: SiteId) -> TxnId {
        self.insert(None, site)
    }

    /// Begins a subtransaction of `parent`, possibly at another site (one
    /// control message each way when remote).
    pub fn begin_sub(&self, fsc: &FsCluster, parent: TxnId, site: SiteId) -> SysResult<TxnId> {
        let psite = {
            let g = self.inner.borrow();
            let p = g.txns.get(&parent).ok_or(Errno::Enotxn)?;
            if p.state != TxnState::Active {
                return Err(Errno::Enotxn);
            }
            p.site
        };
        if psite != site {
            fsc.net()
                .send(psite, site, "TXN begin", CTRL_BYTES)
                .map_err(|_| Errno::Esitedown)?;
            fsc.net()
                .send(site, psite, "TXN begin ack", CTRL_BYTES)
                .map_err(|_| Errno::Esitedown)?;
        }
        let tid = self.insert(Some(parent), site);
        self.inner
            .borrow_mut()
            .txns
            .get_mut(&parent)
            .expect("checked above")
            .children
            .push(tid);
        Ok(tid)
    }

    fn insert(&self, parent: Option<TxnId>, site: SiteId) -> TxnId {
        let mut g = self.inner.borrow_mut();
        let tid = TxnId(g.next);
        g.next += 1;
        g.txns.insert(
            tid,
            Txn {
                parent,
                children: Vec::new(),
                site,
                state: TxnState::Active,
                writes: BTreeMap::new(),
            },
        );
        tid
    }

    /// The transaction's state.
    pub fn state(&self, tid: TxnId) -> SysResult<TxnState> {
        Ok(self
            .inner
            .borrow()
            .txns
            .get(&tid)
            .ok_or(Errno::Enotxn)?
            .state)
    }

    /// The ancestor chain including `tid` itself.
    fn ancestors(&self, tid: TxnId) -> SysResult<BTreeSet<TxnId>> {
        let g = self.inner.borrow();
        let mut out = BTreeSet::new();
        let mut cur = Some(tid);
        while let Some(t) = cur {
            let txn = g.txns.get(&t).ok_or(Errno::Enotxn)?;
            out.insert(t);
            cur = txn.parent;
        }
        Ok(out)
    }

    /// Transactional read: the nearest staged version on the ancestor
    /// chain, else the committed file.
    pub fn read(&self, fsc: &FsCluster, tid: TxnId, gfid: Gfid) -> SysResult<Vec<u8>> {
        let (site, chain) = {
            let g = self.inner.borrow();
            let t = g.txns.get(&tid).ok_or(Errno::Enotxn)?;
            if t.state != TxnState::Active {
                return Err(Errno::Enotxn);
            }
            let mut chain = Vec::new();
            let mut cur = Some(tid);
            while let Some(c) = cur {
                chain.push(c);
                cur = g.txns.get(&c).and_then(|t| t.parent);
            }
            (t.site, chain)
        };
        {
            let g = self.inner.borrow();
            for t in &chain {
                if let Some(bytes) = g.txns[t].writes.get(&gfid) {
                    return Ok(bytes.clone());
                }
            }
        }
        namei::read_file_internal(fsc, site, gfid)
    }

    /// Transactional write: stages a whole-file image under a write lock.
    pub fn write(&self, fsc: &FsCluster, tid: TxnId, gfid: Gfid, bytes: &[u8]) -> SysResult<()> {
        let _ = fsc;
        let ancestors = self.ancestors(tid)?;
        let mut g = self.inner.borrow_mut();
        let t = g.txns.get(&tid).ok_or(Errno::Enotxn)?;
        if t.state != TxnState::Active {
            return Err(Errno::Enotxn);
        }
        if !g.locks.holds(gfid, tid) && !g.locks.acquire(gfid, tid, &ancestors) {
            return Err(Errno::Etxtbsy);
        }
        g.txns
            .get_mut(&tid)
            .expect("checked above")
            .writes
            .insert(gfid, bytes.to_vec());
        Ok(())
    }

    /// Commits `tid`. A subtransaction passes its updates and locks to its
    /// parent; a top-level transaction installs every staged file through
    /// the filesystem's atomic commit. Active children are committed
    /// bottom-up first (a convenience; strict Moss requires children
    /// complete first, and this enforces exactly that order).
    pub fn commit(&self, fsc: &FsCluster, tid: TxnId) -> SysResult<()> {
        // Children first.
        let children: Vec<TxnId> = {
            let g = self.inner.borrow();
            let t = g.txns.get(&tid).ok_or(Errno::Enotxn)?;
            if t.state != TxnState::Active {
                return Err(Errno::Enotxn);
            }
            t.children.clone()
        };
        for c in children {
            if self.state(c)? == TxnState::Active {
                self.commit(fsc, c)?;
            }
        }

        let (parent, site, writes) = {
            let g = self.inner.borrow();
            let t = &g.txns[&tid];
            (t.parent, t.site, t.writes.clone())
        };
        match parent {
            Some(p) => {
                // Subtransaction: inherit updates and locks upward; one
                // commit message if the parent is elsewhere.
                let psite = self.inner.borrow().txns[&p].site;
                if psite != site {
                    fsc.net()
                        .send(site, psite, "TXN commit", CTRL_BYTES)
                        .map_err(|_| Errno::Esitedown)?;
                }
                let mut g = self.inner.borrow_mut();
                let parent_txn = g.txns.get_mut(&p).ok_or(Errno::Enotxn)?;
                if parent_txn.state != TxnState::Active {
                    return Err(Errno::Enotxn);
                }
                for (gfid, bytes) in writes {
                    parent_txn.writes.insert(gfid, bytes);
                }
                g.locks.pass_to_parent(tid, p);
                g.txns.get_mut(&tid).expect("exists").state = TxnState::Committed;
                Ok(())
            }
            None => {
                // Top-level: make it all permanent via §2.3.6 commits.
                for (gfid, bytes) in &writes {
                    namei::write_file_internal(fsc, site, *gfid, bytes)?;
                }
                let mut g = self.inner.borrow_mut();
                g.locks.release_all(tid);
                g.txns.get_mut(&tid).expect("exists").state = TxnState::Committed;
                Ok(())
            }
        }
    }

    /// Aborts `tid` and its whole subtree: staged updates are discarded
    /// and locks released ("undo any changes back to the previous commit
    /// point").
    #[allow(clippy::only_used_in_recursion)] // kept for API symmetry with `commit`
    pub fn abort(&self, fsc: &FsCluster, tid: TxnId) -> SysResult<()> {
        let children: Vec<TxnId> = {
            let g = self.inner.borrow();
            g.txns.get(&tid).ok_or(Errno::Enotxn)?.children.clone()
        };
        for c in children {
            if self.state(c)? == TxnState::Active {
                self.abort(fsc, c)?;
            }
        }
        let mut g = self.inner.borrow_mut();
        let t = g.txns.get_mut(&tid).ok_or(Errno::Enotxn)?;
        t.writes.clear();
        t.state = TxnState::Aborted;
        g.locks.release_all(tid);
        Ok(())
    }

    /// §5.6 cleanup, "Distributed Transaction" row: when the partition
    /// changes, "abort all related subtransactions in partition" — every
    /// active subtransaction that can no longer reach its parent's site is
    /// aborted (with its subtree). Returns how many were aborted.
    pub fn abort_orphans(&self, fsc: &FsCluster) -> usize {
        let orphans: Vec<TxnId> = {
            let g = self.inner.borrow();
            g.txns
                .iter()
                .filter(|(_, t)| t.state == TxnState::Active)
                .filter(|(_, t)| match t.parent {
                    Some(p) => {
                        let psite = g.txns[&p].site;
                        psite != t.site && !fsc.net().reachable(t.site, psite)
                    }
                    None => !fsc.net().is_up(t.site),
                })
                .map(|(&tid, _)| tid)
                .collect()
        };
        let mut n = 0;
        for tid in orphans {
            if self.state(tid) == Ok(TxnState::Active) {
                let _ = self.abort(fsc, tid);
                n += 1;
            }
        }
        n
    }

    /// Number of files currently write-locked by transactions.
    pub fn locked_files(&self) -> usize {
        self.inner.borrow().locks.locked_files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_fs::ops::{fd, namei};
    use locus_fs::{FsClusterBuilder, ProcFsCtx};
    use locus_types::{FileType, MachineType, Perms};

    fn setup() -> (FsCluster, TxnMgr, Gfid) {
        let fsc = FsClusterBuilder::new()
            .vax_sites(3)
            .filegroup("root", &[0, 1])
            .build();
        let ctx = ProcFsCtx::new(
            fsc.kernel(SiteId(0)).mount.root().unwrap(),
            MachineType::Vax,
        );
        let fdn = fd::creat(
            &fsc,
            SiteId(0),
            &ctx,
            "/acct",
            FileType::Database,
            Perms::FILE_DEFAULT,
        )
        .unwrap();
        fd::write(&fsc, SiteId(0), fdn, b"balance=100").unwrap();
        fd::close(&fsc, SiteId(0), fdn).unwrap();
        fsc.settle();
        let gfid = namei::resolve(&fsc, SiteId(0), &ctx, "/acct").unwrap();
        (fsc, TxnMgr::new(), gfid)
    }

    use locus_fs::FsCluster;

    #[test]
    fn top_level_commit_persists() {
        let (fsc, tm, gfid) = setup();
        let t = tm.begin(SiteId(0));
        assert_eq!(tm.read(&fsc, t, gfid).unwrap(), b"balance=100");
        tm.write(&fsc, t, gfid, b"balance=50").unwrap();
        assert_eq!(
            tm.read(&fsc, t, gfid).unwrap(),
            b"balance=50",
            "own write visible"
        );
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(1), gfid).unwrap(),
            b"balance=100",
            "uncommitted write invisible outside"
        );
        tm.commit(&fsc, t).unwrap();
        fsc.settle();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(1), gfid).unwrap(),
            b"balance=50"
        );
    }

    #[test]
    fn abort_discards_and_unlocks() {
        let (fsc, tm, gfid) = setup();
        let t = tm.begin(SiteId(0));
        tm.write(&fsc, t, gfid, b"balance=0").unwrap();
        tm.abort(&fsc, t).unwrap();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"balance=100"
        );
        assert_eq!(tm.locked_files(), 0);
        let t2 = tm.begin(SiteId(1));
        tm.write(&fsc, t2, gfid, b"balance=99").unwrap();
        tm.commit(&fsc, t2).unwrap();
    }

    #[test]
    fn nested_commit_flows_through_parent() {
        let (fsc, tm, gfid) = setup();
        let top = tm.begin(SiteId(0));
        let sub = tm.begin_sub(&fsc, top, SiteId(1)).unwrap();
        tm.write(&fsc, sub, gfid, b"balance=75").unwrap();
        tm.commit(&fsc, sub).unwrap();
        // Parent now sees the subtransaction's update; disk does not.
        assert_eq!(tm.read(&fsc, top, gfid).unwrap(), b"balance=75");
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"balance=100"
        );
        tm.commit(&fsc, top).unwrap();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"balance=75"
        );
    }

    #[test]
    fn subtransaction_abort_leaves_parent_intact() {
        let (fsc, tm, gfid) = setup();
        let top = tm.begin(SiteId(0));
        tm.write(&fsc, top, gfid, b"balance=90").unwrap();
        let sub = tm.begin_sub(&fsc, top, SiteId(1)).unwrap();
        tm.write(&fsc, sub, gfid, b"balance=10").unwrap();
        assert_eq!(tm.read(&fsc, sub, gfid).unwrap(), b"balance=10");
        tm.abort(&fsc, sub).unwrap();
        assert_eq!(tm.read(&fsc, top, gfid).unwrap(), b"balance=90");
        tm.commit(&fsc, top).unwrap();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"balance=90"
        );
    }

    #[test]
    fn sibling_lock_conflict() {
        let (fsc, tm, gfid) = setup();
        let top = tm.begin(SiteId(0));
        let s1 = tm.begin_sub(&fsc, top, SiteId(0)).unwrap();
        let s2 = tm.begin_sub(&fsc, top, SiteId(1)).unwrap();
        tm.write(&fsc, s1, gfid, b"one").unwrap();
        assert_eq!(
            tm.write(&fsc, s2, gfid, b"two").unwrap_err(),
            Errno::Etxtbsy
        );
        tm.commit(&fsc, s1).unwrap();
        // After s1 commits, the lock belongs to `top`, s2's ancestor.
        tm.write(&fsc, s2, gfid, b"two").unwrap();
        tm.commit(&fsc, s2).unwrap();
        tm.commit(&fsc, top).unwrap();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"two"
        );
    }

    #[test]
    fn partition_aborts_orphan_subtransactions() {
        let (fsc, tm, gfid) = setup();
        let top = tm.begin(SiteId(0));
        let sub = tm.begin_sub(&fsc, top, SiteId(2)).unwrap();
        tm.write(&fsc, sub, gfid, b"tentative").unwrap();
        fsc.net()
            .partition(&[vec![SiteId(0), SiteId(1)], vec![SiteId(2)]]);
        let n = tm.abort_orphans(&fsc);
        assert_eq!(n, 1);
        assert_eq!(tm.state(sub).unwrap(), TxnState::Aborted);
        assert_eq!(
            tm.state(top).unwrap(),
            TxnState::Active,
            "parent side survives"
        );
        // The parent can still commit its own (empty) work.
        tm.commit(&fsc, top).unwrap();
        assert_eq!(
            namei::read_file_internal(&fsc, SiteId(0), gfid).unwrap(),
            b"balance=100"
        );
    }

    #[test]
    fn operations_on_finished_transactions_fail() {
        let (fsc, tm, gfid) = setup();
        let t = tm.begin(SiteId(0));
        tm.commit(&fsc, t).unwrap();
        assert_eq!(tm.write(&fsc, t, gfid, b"x").unwrap_err(), Errno::Enotxn);
        assert_eq!(tm.read(&fsc, t, gfid).unwrap_err(), Errno::Enotxn);
        assert_eq!(tm.commit(&fsc, t).unwrap_err(), Errno::Enotxn);
    }

    use locus_types::SiteId;
}
