//! Nested transactions for LOCUS ([MEUL 83], cited in §1 and §4.1).
//!
//! The paper states LOCUS supplies "a full implementation of nested
//! transactions" and uses them when "changes to sets of objects are
//! related" (§4.1); the §5.6 cleanup table requires that on partition the
//! system "abort all related subtransactions in partition".
//!
//! The model follows Moss-style nesting as adapted by Mueller, Moore and
//! Popek:
//!
//! * a *top-level* transaction owns a tree of subtransactions, each of
//!   which may execute at a different site;
//! * a transaction may acquire a write lock if every current holder is an
//!   ancestor (lock inheritance);
//! * a subtransaction's updates and locks are passed to its parent on
//!   commit, and discarded (with its whole subtree) on abort;
//! * only top-level commit makes anything permanent, applied through the
//!   filesystem's atomic per-file commit (§2.3.6 shadow pages);
//! * reads see the nearest ancestor's staged version, else the committed
//!   file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locks;
pub mod mgr;

pub use locks::LockTable;
pub use mgr::{TxnId, TxnMgr, TxnState};
