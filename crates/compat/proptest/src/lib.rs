//! An offline, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates-io access, so the
//! real `proptest` cannot be fetched. This crate implements the subset of
//! its API the workspace's property tests actually use — seeded strategy
//! sampling, `proptest!`, `prop_assert*`, `prop_oneof!`, collection and
//! regex-ish string strategies — with a deterministic xorshift generator,
//! so `use proptest::prelude::*;` tests compile and run unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and seed; re-run
//!   with `PROPTEST_SEED` to reproduce it exactly.
//! * **Deterministic by default.** The case seed derives from the test
//!   name and case index (override with `PROPTEST_SEED`), so CI runs are
//!   reproducible without a persistence file.
//! * Only the regex forms actually used are supported by the string
//!   strategy: literals, `.`, `[...]` classes with ranges, and `{m,n}` /
//!   `{n}` repetition.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The deterministic generator behind every strategy sample
/// (xorshift64*; public so the macros can construct it).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values of one type; the sampling half of proptest's
/// `Strategy` (no shrink tree).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy (the target of [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the engine of
/// [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `&str` patterns act as string strategies over a small regex subset.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_like::generate(self, rng)
    }
}

mod regex_like {
    use super::TestRng;

    enum Atom {
        /// A literal character.
        Lit(char),
        /// `.` — any printable character except newline.
        Dot,
        /// `[...]` — one of an explicit alternative set.
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().expect("checked") as u32 + 1;
                    let hi = chars.next().expect("checked") as u32;
                    for v in lo..=hi {
                        if let Some(ch) = char::from_u32(v) {
                            out.push(ch);
                        }
                    }
                }
                _ => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
        out
    }

    /// Parses `{m,n}` or `{n}` immediately following an atom; returns the
    /// repetition bounds, defaulting to exactly-once.
    fn parse_reps(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().unwrap_or(0),
                hi.trim().parse().unwrap_or(0),
            ),
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                other => Atom::Lit(other),
            };
            let (lo, hi) = parse_reps(&mut chars);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Lit(ch) => out.push(*ch),
                    Atom::Dot => {
                        // Mostly printable ASCII with the occasional
                        // multi-byte char, never a newline (regex `.`).
                        if rng.below(10) == 0 {
                            out.push(['λ', '¥', '中', 'ß', '🦀'][rng.below(5) as usize]);
                        } else {
                            out.push((0x20u8 + rng.below(0x5F) as u8) as char);
                        }
                    }
                    Atom::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                }
            }
        }
        out
    }
}

/// `any::<T>()` support for common primitives.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T` (for supported primitives).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// A collection-size specification: an exact length or a half-open
    /// range of lengths (mirrors proptest's `SizeRange` conversions).
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s (duplicates collapse).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sets of `element` values with at most `size.end - 1` members.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `BTreeMap`s (duplicate keys collapse).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Maps with keys/values from the given strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into().0 }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runtime support consumed by the [`proptest!`] expansion.
pub mod runtime {
    use super::ProptestConfig;

    /// Cases to run: `PROPTEST_CASES` env override, else the config.
    pub fn case_count(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
    }

    /// Deterministic per-test seed: `PROPTEST_SEED` env override, else a
    /// hash of the test's module path and name.
    pub fn base_seed(test_name: &str) -> u64 {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return seed;
        }
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Defines seeded property tests over the strategies in its parameter
/// lists (API-compatible subset of proptest's macro).
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below, which
    // would otherwise re-match `@cfg ...` and recurse without end.
    (@cfg ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::runtime::case_count(&config);
            let seed = $crate::runtime::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases as u64 {
                let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut inputs = String::new();
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(
                        let value = $crate::Strategy::generate(&$strat, &mut rng);
                        inputs.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), value
                        ));
                        let $arg = value;
                    )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {case} of {cases} failed (seed {seed}):\n{inputs}{e}",
                    );
                }
            }
        }
    )*};
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// A failed property (carried by `prop_assert*` early returns).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Asserts a condition, failing the case (not the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality, failing the case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Asserts inequality, failing the case on violation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
}

/// Rejects the current case (treated as a skipped case, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-c][a-c0-9._-]{0,4}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 5, "{s:?}");
            assert!(s.chars().next().is_some_and(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn oneof_covers_alternatives(x in prop_oneof![Just(1u32), Just(2u32), (5u32..8)]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }
    }
}
