//! An offline, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The workspace builds without crates-io access, so the real `criterion`
//! cannot be fetched. This crate implements the API subset the `[[bench]]`
//! targets use — `Criterion`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with plain wall-clock measurement and a
//! one-line-per-benchmark report. No statistical analysis, plots or
//! HTML output; the simulated-time numbers the experiments print via
//! `eprintln!` are the primary artifact anyway.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (report lines were already printed).
    pub fn finish(self) {}
}

/// A benchmark identifier (name, or parameter rendering).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }

    /// An id rendering just the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // One warm-up call, then the timed samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let (mean, min, max) = if per_iter.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        (mean, min, max)
    };
    println!(
        "bench {label:<48} {:>12} (min {}, max {}, {} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        sample_size
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        smoke();
    }
}
